package gblas_test

import (
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/gblas"
	"aamgo/internal/graph"
)

func runTriangles(t *testing.T, g *graph.Graph, nodes, threads int, eng aam.Config) uint64 {
	t.Helper()
	tr := gblas.NewTriangles(g, nodes, eng)
	m := machineFor(tr, nodes, threads, 21)
	m.Run(tr.Body())
	return tr.Count(m)
}

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func TestTrianglesKnownGraphs(t *testing.T) {
	// K4 has C(4,3)=4 triangles; K5 has 10; a 4-cycle has none.
	if got := gblas.SeqTriangles(completeGraph(4)); got != 4 {
		t.Fatalf("K4 reference = %d, want 4", got)
	}
	if got := runTriangles(t, completeGraph(4), 1, 2, htmEngine()); got != 4 {
		t.Fatalf("K4 = %d, want 4", got)
	}
	if got := runTriangles(t, completeGraph(5), 1, 4, htmEngine()); got != 10 {
		t.Fatalf("K5 = %d, want 10", got)
	}
	cycle := graph.NewBuilder(4)
	for i := int32(0); i < 4; i++ {
		cycle.AddEdge(i, (i+1)%4)
	}
	if got := runTriangles(t, cycle.Build(), 1, 2, htmEngine()); got != 0 {
		t.Fatalf("C4 = %d, want 0", got)
	}
}

func TestTrianglesMatchReferenceOnKronecker(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := graph.Kronecker(9, 8, seed)
		want := gblas.SeqTriangles(g)
		got := runTriangles(t, g, 1, 8, htmEngine())
		if got != want {
			t.Fatalf("seed %d: %d triangles, reference %d", seed, got, want)
		}
	}
}

func TestTrianglesDistributed(t *testing.T) {
	g := graph.Kronecker(9, 8, 4)
	want := gblas.SeqTriangles(g)
	got := runTriangles(t, g, 4, 4, aam.Config{M: 8, C: 32, Mechanism: aam.MechHTM})
	if got != want {
		t.Fatalf("distributed: %d triangles, reference %d", got, want)
	}
}

func TestTrianglesAcrossMechanisms(t *testing.T) {
	g := graph.Kronecker(8, 8, 5)
	want := gblas.SeqTriangles(g)
	for _, mech := range []aam.Mechanism{
		aam.MechHTM, aam.MechAtomic, aam.MechLock,
		aam.MechOptimistic, aam.MechFlatCombining,
	} {
		got := runTriangles(t, g, 1, 4, aam.Config{M: 8, Mechanism: mech})
		if got != want {
			t.Fatalf("%v: %d triangles, reference %d", mech, got, want)
		}
	}
}

func TestTrianglesMultiEdgesDoNotInflate(t *testing.T) {
	// Duplicate edges of a single triangle must still count exactly one.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(0, 2)
	g := b.Build()
	if got := gblas.SeqTriangles(g); got != 1 {
		t.Fatalf("reference with multi-edges = %d, want 1", got)
	}
	if got := runTriangles(t, g, 1, 1, htmEngine()); got != 1 {
		t.Fatalf("multi-edge triangle = %d, want 1", got)
	}
}
