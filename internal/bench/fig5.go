package bench

import (
	"fmt"

	"aamgo/internal/aam"
	"aamgo/internal/am"
	"aamgo/internal/baseline"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "fig5c-remote-cas-bgq",
		Title: "Remote vertex marking on BG/Q: coalescing sweep vs PAMI CAS",
		Paper: "Fig. 5c: uncoalesced inter-node HTM is ~5x slower than PAMI " +
			"one-sided CAS; the short mode overtakes it around C=16.",
		Run: func(o Options) *Report {
			return runFig5Coalesce(o, exec.BGQ(), []string{"short", "long"}, false)
		},
	})
	register(Experiment{
		ID:    "fig5e-remote-acc-bgq",
		Title: "Remote rank increment on BG/Q: coalescing sweep vs PAMI ACC",
		Paper: "Fig. 5e: HTM-ACC aborts are costly, but coalescing still " +
			"yields ≈20% speedup over PAMI atomics in the short mode.",
		Run: func(o Options) *Report {
			return runFig5Coalesce(o, exec.BGQ(), []string{"short", "long"}, true)
		},
	})
	register(Experiment{
		ID:    "fig5g-remote-cas-hasp",
		Title: "Remote vertex marking on Has-P: coalescing sweep vs MPI-3 RMA",
		Paper: "Fig. 5g: C=2 already lets AAM outperform InfiniBand remote " +
			"atomics.",
		Run: func(o Options) *Report {
			return runFig5Coalesce(o, exec.HaswellP(), []string{"rtm", "hle"}, false)
		},
	})
	register(Experiment{
		ID:    "fig5h-remote-acc-hasp",
		Title: "Remote rank increment on Has-P: coalescing sweep vs MPI-3 RMA",
		Paper: "Fig. 5h: same shape as 5g for accumulate.",
		Run: func(o Options) *Report {
			return runFig5Coalesce(o, exec.HaswellP(), []string{"rtm", "hle"}, true)
		},
	})
	register(Experiment{
		ID:    "fig5d-scale-cas-bgq",
		Title: "Remote marking, node scaling: coalesced AAM vs PAMI CAS",
		Paper: "Fig. 5d: with all N-1 processes targeting p_N, coalesced AAM " +
			"outperforms one-sided CAS ≈5–7x.",
		Run: func(o Options) *Report { return runFig5Scale(o, false) },
	})
	register(Experiment{
		ID:    "fig5f-scale-acc-bgq",
		Title: "Remote increments, node scaling: coalesced AAM vs PAMI ACC",
		Paper: "Fig. 5f: same scaling for accumulate.",
		Run:   func(o Options) *Report { return runFig5Scale(o, true) },
	})
	register(Experiment{
		ID:    "fig5i-ownership",
		Title: "Distributed transactions via the ownership protocol (O-1..O-4)",
		Paper: "Fig. 5i: O-1 fastest; more remote vertices (O-3) and more " +
			"transactions (O-2/O-4) cost more; backoff prevents livelock.",
		Run: runFig5i,
	})
}

// remoteWorkload prepares an AAM runtime with a mark (CAS-like) or
// increment (ACC-like) operator over a target node's vertex array.
type remoteWorkload struct {
	rt     *aam.Runtime
	op     int
	nverts int
}

func newRemoteWorkload(nverts int, acc bool) *remoteWorkload {
	w := &remoteWorkload{rt: aam.NewRuntime(), nverts: nverts}
	if acc {
		w.op = w.rt.Register(&aam.Op{
			Name:          "remote-acc",
			AlwaysSucceed: true,
			Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
				tx.Write(v, tx.Read(v)+arg)
				return 0, false
			},
			BodyAtomic: func(ctx exec.Context, e *aam.Engine, v int, arg uint64) (uint64, bool) {
				ctx.FetchAdd(v, arg)
				return 0, false
			},
		})
	} else {
		w.op = w.rt.Register(&aam.Op{
			Name: "remote-mark",
			Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
				if tx.Read(v) == 0 {
					tx.Write(v, arg)
					return 0, false
				}
				return 0, true
			},
			BodyAtomic: func(ctx exec.Context, e *aam.Engine, v int, arg uint64) (uint64, bool) {
				return 0, !ctx.CAS(v, 0, arg)
			},
		})
	}
	return w
}

// runRemoteAAM times issuing ops operator invocations from every node
// except the last against vertices owned by the last node, with coalescing
// factor C and target-side coarsening M=C, under the named HTM variant.
func runRemoteAAM(o Options, prof exec.MachineProfile, nodes, ops int,
	variant string, c int, acc bool) (vtime.Time, uint64) {
	w := newRemoteWorkload(ops, acc)
	part := graph.NewPartition(nodes*ops, nodes) // block owner layout
	cfg := aam.Config{
		M:         c,
		C:         c,
		Mechanism: aam.MechHTM,
		HTM:       prof.HTMVariant(variant),
		Part:      part,
	}
	m := machine(o.Backend, prof, nodes, 1, ops+64, w.rt.Handlers(nil), o.Seed)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, cfg)
		target := ctx.Nodes() - 1
		if ctx.NodeID() != target {
			rng := ctx.Rand()
			for i := 0; i < ops; i++ {
				gv := part.Global(target, rng.Intn(ops))
				eng.Spawn(w.op, gv, 1)
			}
		}
		eng.Drain()
	})
	return res.Elapsed, res.Stats.TotalAborts()
}

// runRemoteAtomics times the PAMI/MPI-3-RMA-style one-sided baseline.
func runRemoteAtomics(o Options, prof exec.MachineProfile, nodes, ops int, acc bool) vtime.Time {
	var ra baseline.RemoteAtomics
	m := machine(o.Backend, prof, nodes, 1, ops+64, ra.Handlers(nil), o.Seed)
	res := m.Run(func(ctx exec.Context) {
		target := ctx.Nodes() - 1
		if ctx.NodeID() != target {
			rng := ctx.Rand()
			for i := 0; i < ops; i++ {
				addr := rng.Intn(ops)
				if acc {
					ra.ACC(ctx, target, addr, 1)
				} else {
					ra.CAS(ctx, target, addr, 0, 1)
				}
			}
		}
		am.Drain(ctx)
	})
	return res.Elapsed
}

func runFig5Coalesce(o Options, prof exec.MachineProfile, variants []string, acc bool) *Report {
	rep := &Report{}
	ops := 1 << o.shift(11, 7) // paper: 2^13 remote operations
	cs := []int{1, 4, 16, 64, 256, 1024}
	kind := "cas"
	if acc {
		kind = "acc"
	}

	base := runRemoteAtomics(o, prof, 2, ops, acc)
	t := rep.NewTable(fmt.Sprintf("%s remote %s: time [ms] vs C (one-sided baseline: %s)",
		prof.Name, kind, fmtMS(base)),
		append([]string{"C"}, variants...)...)

	best := make(map[string]vtime.Time)
	first := make(map[string]vtime.Time)
	for _, c := range cs {
		row := []string{itoa(c)}
		for _, v := range variants {
			el, _ := runRemoteAAM(o, prof, 2, ops, v, c, acc)
			row = append(row, fmtMS(el))
			if c == 1 {
				first[v] = el
			}
			if b, ok := best[v]; !ok || el < b {
				best[v] = el
			}
		}
		t.AddRow(row...)
	}

	fast := variants[0]
	rep.Notef("baseline %s one-sided %s: %s ms; best coalesced %s: %s ms",
		prof.Name, kind, fmtMS(base), fast, fmtMS(best[fast]))
	rep.Checkf(first[fast] > base, "uncoalesced HTM loses",
		"C=1 %s %s ms vs one-sided %s ms", fast, fmtMS(first[fast]), fmtMS(base))
	rep.Checkf(best[fast] < base, "coalescing wins",
		"best %s %s ms vs one-sided %s ms (speedup %.2f)",
		fast, fmtMS(best[fast]), fmtMS(base), speedupF(base, best[fast]))
	return rep
}

func runFig5Scale(o Options, acc bool) *Report {
	rep := &Report{}
	prof := exec.BGQ()
	ops := 1 << o.shift(9, 6) // per issuing node
	maxN := 32
	if o.Scale >= 3 {
		maxN = 256
	}
	kind := "cas"
	if acc {
		kind = "acc"
	}
	t := rep.NewTable(fmt.Sprintf("bgq remote %s: time [ms] vs nodes", kind),
		"N", "htm-C1", "one-sided", "htm-C2048")

	var lastSpeedup float64
	for _, n := range geomSeq(2, maxN) {
		noCo, _ := runRemoteAAM(o, prof, n, ops, "short", 1, acc)
		atom := runRemoteAtomics(o, prof, n, ops, acc)
		co, _ := runRemoteAAM(o, prof, n, ops, "short", 2048, acc)
		t.AddRow(itoa(n), fmtMS(noCo), fmtMS(atom), fmtMS(co))
		lastSpeedup = speedupF(atom, co)
	}
	rep.Checkf(lastSpeedup > 2, "coalesced AAM beats one-sided",
		"at max N speedup %.2f (paper: ≈5–7x for CAS, ≈1.2x for ACC)", lastSpeedup)
	return rep
}

// fig5iScenario matches the paper's O-1..O-4.
type fig5iScenario struct {
	name string
	x    int // transactions per process
	a, b int // local, remote vertices per transaction
}

func runFig5i(o Options) *Report {
	rep := &Report{}
	prof := exec.BGQ()
	div := 10 // reduced transaction counts
	if o.Scale >= 3 {
		div = 1
	}
	scens := []fig5iScenario{
		{"O-1", 1000 / div, 5, 1},
		{"O-2", 10000 / div, 5, 1},
		{"O-3", 1000 / div, 7, 3},
		{"O-4", 10000 / div, 7, 3},
	}
	maxN := 16
	if o.Scale >= 3 {
		maxN = 128
	}
	ns := geomSeq(2, maxN)

	t := rep.NewTable("ownership protocol: total time [s] vs nodes",
		append([]string{"N"}, scenNames(scens)...)...)
	times := make(map[string][]float64)
	for _, n := range ns {
		row := []string{itoa(n)}
		for _, sc := range scens {
			el := runFig5iPoint(o, prof, n, sc)
			row = append(row, fmtS(el))
			times[sc.name] = append(times[sc.name], el.Seconds())
		}
		t.AddRow(row...)
	}

	last := len(ns) - 1
	rep.Checkf(times["O-1"][last] < times["O-2"][last] &&
		times["O-1"][last] < times["O-3"][last] &&
		times["O-1"][last] < times["O-4"][last],
		"O-1 fastest", "O-1 %.3fs vs O-2 %.3fs O-3 %.3fs O-4 %.3fs",
		times["O-1"][last], times["O-2"][last], times["O-3"][last], times["O-4"][last])
	rep.Checkf(times["O-3"][last] > times["O-1"][last],
		"more remote vertices cost more",
		"O-3/O-1 = %.2f", times["O-3"][last]/times["O-1"][last])
	rep.Checkf(times["O-4"][last] >= times["O-2"][last]*0.8,
		"O-2/O-4 follow same pattern",
		"O-4 %.3fs vs O-2 %.3fs", times["O-4"][last], times["O-2"][last])
	return rep
}

func scenNames(scens []fig5iScenario) []string {
	out := make([]string, len(scens))
	for i, s := range scens {
		out[i] = s.name
	}
	return out
}

// runFig5iPoint executes one ownership-protocol scenario: every process
// issues sc.x distributed transactions over sc.a local + sc.b remote
// random vertices, serving acquire traffic throughout; done flags plus a
// final drain terminate the run.
func runFig5iPoint(o Options, prof exec.MachineProfile, nodes int, sc fig5iScenario) vtime.Time {
	const verts = 1 << 10
	layout := aam.OwnershipLayout{
		MarkerBase:  0,
		DataBase:    verts,
		MailboxBase: 2*verts + nodes + 8,
	}
	own := aam.NewOwnership(layout)
	// Done flags live in the data region at verts+src (writeback handler
	// stores them); handler id 2 is the writeback handler.
	const writebackH = 2
	mem := 2*verts + nodes + 64
	m := machine(o.Backend, prof, nodes, 1, mem, own.Handlers(nil), o.Seed)
	res := m.Run(func(ctx exec.Context) {
		rng := ctx.Rand()
		me := ctx.NodeID()
		local := make([]int, sc.a)
		remote := make([]aam.GlobalRef, sc.b)
		for i := 0; i < sc.x; i++ {
			for j := range local {
				local[j] = rng.Intn(verts)
			}
			for j := range remote {
				n := rng.Intn(ctx.Nodes() - 1)
				if n >= me {
					n++
				}
				remote[j] = aam.GlobalRef{Node: n, Index: rng.Intn(verts)}
			}
			own.RunDistTx(ctx, local, remote, nil,
				func(tx exec.Tx, localData []int, remoteVals []uint64) []uint64 {
					for _, addr := range localData {
						tx.Write(addr, 1)
					}
					marked := make([]uint64, len(remoteVals))
					for j := range marked {
						marked[j] = 1
					}
					return marked
				})
		}
		// Announce completion to every node, then serve until all are done.
		for n := 0; n < ctx.Nodes(); n++ {
			if n == me {
				ctx.Store(verts+verts+me, 1) // data(verts+me)
			} else {
				ctx.Send(n, writebackH, []uint64{uint64(verts + me), 1})
			}
		}
		for {
			done := 0
			for n := 0; n < ctx.Nodes(); n++ {
				if ctx.Load(verts+verts+n) != 0 {
					done++
				}
			}
			if done == ctx.Nodes() {
				break
			}
			if ctx.Poll() == 0 {
				ctx.Compute(300 * vtime.Nanosecond)
			}
		}
		am.Drain(ctx)
	})
	return res.Elapsed
}
