package aamgo_test

import (
	"math"
	"testing"

	"aamgo"
)

func kron(t *testing.T) *aamgo.Graph {
	t.Helper()
	return aamgo.Kronecker(9, 8, 7)
}

func maxDeg(g *aamgo.Graph) int {
	best, bd := 0, -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > bd {
			best, bd = v, d
		}
	}
	return best
}

func TestBFSFacade(t *testing.T) {
	g := kron(t)
	src := maxDeg(g)
	res, err := aamgo.BFS(g, src, aamgo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parents[src] != int64(src) {
		t.Fatalf("source parent = %d", res.Parents[src])
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time reported")
	}
	visited := 0
	for _, p := range res.Parents {
		if p >= 0 {
			visited++
		}
	}
	if visited < g.N/4 {
		t.Fatalf("only %d of %d vertices visited from max-degree source", visited, g.N)
	}
}

func TestBFSFacadeRejectsBadSource(t *testing.T) {
	g := kron(t)
	if _, err := aamgo.BFS(g, -1, aamgo.Config{}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := aamgo.BFS(g, g.N, aamgo.Config{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := aamgo.BFS(g, 0, aamgo.Config{Machine: "cray"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestPageRankFacadeSumsToOne(t *testing.T) {
	g := kron(t)
	ranks, ri, err := aamgo.PageRank(g, 0.85, 5, aamgo.Config{Machine: "bgq", Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range ranks {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	// Push PR does not redistribute dangling mass, so the total is below
	// one on graphs with isolated vertices, but must stay in (0, 1].
	if sum <= 0.5 || sum > 1.001 {
		t.Fatalf("ranks sum to %f", sum)
	}
	if ri.Stats.OpsExecuted == 0 {
		t.Fatal("no operators executed")
	}
}

func TestMechanismsAgree(t *testing.T) {
	g := kron(t)
	src := maxDeg(g)
	base, err := aamgo.BFS(g, src, aamgo.Config{Mechanism: aamgo.HTM, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	countVisited := func(ps []int64) int {
		n := 0
		for _, p := range ps {
			if p >= 0 {
				n++
			}
		}
		return n
	}
	for _, mech := range []aamgo.Mechanism{aamgo.Atomic, aamgo.Lock} {
		r, err := aamgo.BFS(g, src, aamgo.Config{Mechanism: mech, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if countVisited(r.Parents) != countVisited(base.Parents) {
			t.Fatalf("%v visits %d vertices, HTM visits %d",
				mech, countVisited(r.Parents), countVisited(base.Parents))
		}
	}
}

func TestMSTFacade(t *testing.T) {
	b := aamgo.NewBuilder(5).WithWeights(aamgo.SymmetricWeight(11))
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(0, 4)
	g := b.Build()
	w, comps, _, err := aamgo.MST(g, aamgo.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w == 0 {
		t.Fatal("zero MST weight on a weighted cycle")
	}
	root := comps[0]
	for v, c := range comps {
		if c != root {
			t.Fatalf("vertex %d in component %d, want %d", v, c, root)
		}
	}
}

func TestColoringFacadeIsProper(t *testing.T) {
	g := kron(t)
	colors, used, _, err := aamgo.Coloring(g, aamgo.Config{Threads: 4, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if used <= 0 {
		t.Fatal("no colors used")
	}
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) != v && colors[v] == colors[w] {
				t.Fatalf("edge %d-%d monochromatic (%d)", v, w, colors[v])
			}
		}
	}
}

func TestConnectedFacade(t *testing.T) {
	b := aamgo.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4) // 3-4-5 is a separate component
	b.AddEdge(4, 5)
	g := b.Build()
	ok, _, err := aamgo.Connected(g, 0, 2, aamgo.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("0 and 2 must be connected")
	}
	ok, _, err = aamgo.Connected(g, 0, 5, aamgo.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("0 and 5 must not be connected")
	}
}

func TestComponentsFacade(t *testing.T) {
	b := aamgo.NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build() // components: {0,1,2}, {3,4}, {5}, {6}
	labels, _, err := aamgo.Components(g, aamgo.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("component {0,1,2} split")
	}
	if labels[3] != labels[4] {
		t.Fatal("component {3,4} split")
	}
	if labels[0] == labels[3] || labels[5] == labels[6] || labels[0] == labels[5] {
		t.Fatal("separate components merged")
	}
}

func TestSSSPFacade(t *testing.T) {
	kg := kron(t)
	b := aamgo.NewBuilder(kg.N).WithWeights(aamgo.SymmetricWeight(5))
	for u := 0; u < kg.N; u++ {
		for _, w := range kg.Neighbors(u) {
			if int32(u) < w {
				b.AddEdge(int32(u), w)
			}
		}
	}
	g := b.Build()
	src := maxDeg(g)
	dists, _, err := aamgo.SSSP(g, src, aamgo.Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dists[src] != 0 {
		t.Fatalf("source distance = %d", dists[src])
	}
	for _, w := range g.Neighbors(src) {
		if dists[w] == math.MaxUint64 {
			t.Fatalf("direct neighbor %d unreachable", w)
		}
	}
	// An unweighted graph must be rejected.
	if _, _, err := aamgo.SSSP(kg, src, aamgo.Config{}); err == nil {
		t.Fatal("unweighted SSSP accepted")
	}
}

func TestNativeBackendFacade(t *testing.T) {
	g := aamgo.Kronecker(8, 6, 5)
	src := maxDeg(g)
	res, err := aamgo.BFS(g, src, aamgo.Config{Backend: "native", Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := aamgo.BFS(g, src, aamgo.Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	count := func(ps []int64) int {
		n := 0
		for _, p := range ps {
			if p >= 0 {
				n++
			}
		}
		return n
	}
	if count(res.Parents) != count(simRes.Parents) {
		t.Fatalf("native visits %d, sim visits %d", count(res.Parents), count(simRes.Parents))
	}
}

func TestAutoMFacade(t *testing.T) {
	g := kron(t)
	src := maxDeg(g)
	res, err := aamgo.BFS(g, src, aamgo.Config{Machine: "bgq", AutoM: true, M: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TxStarted == 0 {
		t.Fatal("AutoM run executed no transactions")
	}
}

func TestMaxFlowFacade(t *testing.T) {
	kg := kron(t)
	b := aamgo.NewBuilder(kg.N).WithWeights(aamgo.SymmetricWeight(8))
	for u := 0; u < kg.N; u++ {
		for _, w := range kg.Neighbors(u) {
			if int32(u) < w {
				b.AddEdge(int32(u), w)
			}
		}
	}
	g := b.Build()
	s := maxDeg(g)
	dst := (s + g.N/2) % g.N
	if dst == s {
		dst = (s + 1) % g.N
	}
	flow, ri, err := aamgo.MaxFlow(g, s, dst, aamgo.Config{Threads: 4, M: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ri.Stats.OpsExecuted == 0 {
		t.Fatal("max flow executed no operators")
	}
	// Flow is bounded by the endpoint degrees' capacity sums.
	capSum := func(v int) uint64 {
		var s uint64
		for _, w := range g.EdgeWeights(v) {
			s += uint64(w)
		}
		return s
	}
	if flow > capSum(s) || flow > capSum(dst) {
		t.Fatalf("flow %d exceeds an endpoint cut (%d / %d)", flow, capSum(s), capSum(dst))
	}
	// Rejections: unweighted graph, bad endpoints.
	if _, _, err := aamgo.MaxFlow(kg, s, dst, aamgo.Config{}); err == nil {
		t.Fatal("unweighted MaxFlow accepted")
	}
	if _, _, err := aamgo.MaxFlow(g, s, s, aamgo.Config{}); err == nil {
		t.Fatal("s == t accepted")
	}
}

func TestExtensionMechanismFacades(t *testing.T) {
	g := kron(t)
	src := maxDeg(g)
	ref, err := aamgo.BFS(g, src, aamgo.Config{Threads: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	count := func(ps []int64) int {
		n := 0
		for _, p := range ps {
			if p >= 0 {
				n++
			}
		}
		return n
	}
	for _, mech := range []aamgo.Mechanism{aamgo.Optimistic, aamgo.FlatCombining} {
		res, err := aamgo.BFS(g, src, aamgo.Config{Threads: 4, Mechanism: mech, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if count(res.Parents) != count(ref.Parents) {
			t.Fatalf("mechanism %v visits %d, HTM visits %d",
				mech, count(res.Parents), count(ref.Parents))
		}
	}
}

func TestLowerSingleFacade(t *testing.T) {
	g := kron(t)
	src := maxDeg(g)
	res, err := aamgo.BFS(g, src, aamgo.Config{Threads: 4, M: 1, LowerSingle: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The BFS mark operator's footprint is multi-word (parent + frontier
	// push), so the pass must analyze and then decline to lower it.
	if res.Stats.LoweredOps != 0 {
		t.Fatalf("BFS mark lowered %d times; its footprint is multi-word", res.Stats.LoweredOps)
	}
}

func TestDynGraphFacade(t *testing.T) {
	g, err := aamgo.NewDynGraph(kron(t))
	if err != nil {
		t.Fatal(err)
	}
	before := g.NumArcs()
	res, err := g.Apply([]aamgo.Mutation{
		aamgo.DynAddVertex(),
		aamgo.DynAddEdge(0, int32(g.N())), // wire the new vertex up
	}, aamgo.DynTxConfig{Mechanism: aamgo.Optimistic})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || res.VerticesAdded != 1 {
		t.Fatalf("unexpected batch result %+v", res)
	}
	if g.NumArcs() != before+2 {
		t.Fatalf("arcs = %d, want %d", g.NumArcs(), before+2)
	}
	// The frozen snapshot runs the unchanged static algorithms.
	f := g.Freeze()
	bfs, err := aamgo.BFS(f, 0, aamgo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if bfs.Parents[f.N-1] != 0 {
		t.Fatalf("new vertex's BFS parent = %d, want 0", bfs.Parents[f.N-1])
	}
	if !g.SameComponent(0, int32(f.N-1)) {
		t.Fatal("incremental CC missed the new edge")
	}
}

func TestShardedFacade(t *testing.T) {
	g := kron(t)
	src := maxDeg(g)

	// Config.Shards routes through the sharded executor; the tree must
	// still be rooted and the depth structure matches the dedicated
	// sharded entry point.
	res, err := aamgo.BFS(g, src, aamgo.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parents[src] != int64(src) {
		t.Fatalf("source parent = %d", res.Parents[src])
	}

	sres, err := aamgo.ShardedBFS(g, src, aamgo.ShardedConfig{
		Shards: 4, BatchSize: 16, Flush: aamgo.FlushBySize,
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := sres.Totals()
	if tot.RemoteUnitsSent == 0 || tot.RemoteUnitsSent != tot.RemoteUnitsRecv {
		t.Fatalf("remote units sent=%d recv=%d", tot.RemoteUnitsSent, tot.RemoteUnitsRecv)
	}

	// Sharded PageRank is bit-identical to the single-runtime ranks.
	single, _, err := aamgo.PageRank(g, 0.85, 5, aamgo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, _, err := aamgo.PageRank(g, 0.85, 5, aamgo.Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := range single {
		if single[v] != sharded[v] {
			t.Fatalf("rank[%d]: sharded %g != single-runtime %g", v, sharded[v], single[v])
		}
	}

	// Sharded components agree with the single-runtime labeling.
	want, _, err := aamgo.Components(g, aamgo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := aamgo.Components(g, aamgo.Config{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("label[%d]: sharded %d != single-runtime %d", v, got[v], want[v])
		}
	}
}

// weightedKron is the Kronecker test graph with deterministic symmetric
// edge weights attached.
func weightedKron(t *testing.T) *aamgo.Graph {
	t.Helper()
	return aamgo.AttachSymmetricWeights(kron(t), 5)
}

func TestShardedIrregularFacade(t *testing.T) {
	g := weightedKron(t)
	src := maxDeg(g)

	// Config.Shards routes SSSP through the sharded executor; distances
	// must equal the single-runtime chaotic relaxation exactly.
	single, _, err := aamgo.SSSP(g, src, aamgo.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	sharded, _, err := aamgo.SSSP(g, src, aamgo.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range single {
		if single[v] != sharded[v] {
			t.Fatalf("dist[%d]: sharded %d != single-runtime %d", v, sharded[v], single[v])
		}
	}
	sres, err := aamgo.ShardedSSSP(g, src, 0, aamgo.ShardedConfig{Shards: 4, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	tot := sres.Totals()
	if tot.RemoteUnitsSent == 0 || tot.RemoteUnitsSent != tot.RemoteUnitsRecv {
		t.Fatalf("sssp remote units sent=%d recv=%d", tot.RemoteUnitsSent, tot.RemoteUnitsRecv)
	}

	// MST: sharded forest weight matches the single-runtime Boruvka.
	w1, _, _, err := aamgo.MST(g, aamgo.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	w2, labels, _, err := aamgo.MST(g, aamgo.Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatalf("sharded MST weight %d != single-runtime %d", w2, w1)
	}
	mres, err := aamgo.ShardedMST(g, aamgo.ShardedConfig{Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Weight != w1 {
		t.Fatalf("ShardedMST weight %d != %d", mres.Weight, w1)
	}
	if len(labels) != g.N || len(mres.Labels) != g.N {
		t.Fatal("missing component labels")
	}

	// Coloring: sharded result is proper and deterministic; seed 0 is the
	// sequential greedy order.
	colors, used, _, err := aamgo.Coloring(g, aamgo.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if used <= 0 {
		t.Fatal("no colors used")
	}
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) != v && colors[v] == colors[w] {
				t.Fatalf("edge %d-%d monochromatic (%d)", v, w, colors[v])
			}
		}
	}
	cres, err := aamgo.ShardedColoring(g, 0, aamgo.ShardedConfig{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Used > g.MaxDegree()+1 {
		t.Fatalf("coloring used %d colors, maxdeg+1 = %d", cres.Used, g.MaxDegree()+1)
	}

	// The sharded SSSP path must reject bad sources and missing weights.
	if _, _, err := aamgo.SSSP(g, g.N+7, aamgo.Config{Shards: 4}); err == nil {
		t.Fatal("out-of-range sharded SSSP source accepted")
	}
	if _, err := aamgo.ShardedMST(kron(t), aamgo.ShardedConfig{Shards: 2}); err == nil {
		t.Fatal("unweighted sharded MST accepted")
	}
}
