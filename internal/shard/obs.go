package shard

import "aamgo/internal/obs"

// Package-level telemetry. Executors are per-query throwaways, so their
// instruments live in obs.Default rather than per-instance registries;
// the series aggregate across every executor in the process.
//
// Everything here records at batch granularity — flush, inbox pop, drain
// barrier — never inside Spawn's per-unit path, and every instrument is
// allocation-free, so the exact-gated executor.steady_allocs=0 bench
// metric holds with telemetry enabled.
var (
	metRemoteUnitsSent   = obs.Default.Counter("aam_shard_remote_units_sent_total")
	metRemoteBatchesSent = obs.Default.Counter("aam_shard_remote_batches_sent_total")
	metRemoteUnitsRecv   = obs.Default.Counter("aam_shard_remote_units_recv_total")
	metRemoteBatchesRecv = obs.Default.Counter("aam_shard_remote_batches_recv_total")
	metBufferAllocs      = obs.Default.Counter("aam_shard_buffer_allocs_total")
	metBufferRecycles    = obs.Default.Counter("aam_shard_buffer_recycles_total")
	metFlushBatchUnits   = obs.Default.Histogram("aam_shard_flush_batch_units")
	metDrainLatency      = obs.Default.Histogram("aam_shard_drain_latency_ns")
)
