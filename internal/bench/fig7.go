package bench

import (
	"fmt"

	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/baseline"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "fig7a-scaling-bgq",
		Title: "BFS strong scaling on BG/Q: AAM vs Graph500 across T",
		Paper: "Fig. 7a: AAM uses on-node parallelism better; Graph500's " +
			"atomics contention dominates at high T.",
		Run: func(o Options) *Report { return runFig7Scaling(o, exec.BGQ(), "short", 144, false) },
	})
	register(Experiment{
		ID:    "fig7b-scaling-haswell",
		Title: "BFS strong scaling on Haswell: AAM vs Graph500 vs Galois vs HAMA",
		Paper: "Fig. 7b: AAM and Graph500 scale similarly and beat Galois by " +
			"≈20–50% and HAMA by ~2 orders of magnitude.",
		Run: func(o Options) *Report { return runFig7Scaling(o, exec.HaswellC(), "rtm", 2, true) },
	})
	register(Experiment{
		ID:    "fig7c-pr-nodes",
		Title: "Distributed PageRank: AAM vs PBGL across nodes",
		Paper: "Fig. 7c: AAM outperforms PBGL ≈3–10x (coalescing + on-node " +
			"threading) at every node count.",
		Run: runFig7c,
	})
	register(Experiment{
		ID:    "fig7d-pr-threads",
		Title: "Distributed PageRank: AAM vs PBGL across threads/processes per node",
		Paper: "Fig. 7d: the gap persists as per-node parallelism grows; " +
			"PBGL pays the network stack even intra-node.",
		Run: runFig7d,
	})
	register(Experiment{
		ID:    "fig7e-pr-verts",
		Title: "Distributed PageRank: AAM vs PBGL across vertices per node",
		Paper: "Fig. 7e: the gap holds across problem sizes.",
		Run:   runFig7e,
	})
}

func runFig7Scaling(o Options, prof exec.MachineProfile, variant string, M int, baselines bool) *Report {
	rep := &Report{}
	scale := o.shift(14, 8) // paper: 2^21 vertices, 2^24 edges
	g := graph.Kronecker(scale, 8, o.Seed)
	src := maxDegVertex(g)
	cols := []string{"T", "graph500", "aam", "speedup"}
	if baselines {
		cols = append(cols, "galois", "hama")
	}
	t := rep.NewTable(prof.Name+" BFS time [ms] vs T", cols...)

	galProf := baseline.GaloisProfile(prof)
	var aamTimes, g5Times []float64
	var galRatio, hamaRatio float64
	for _, T := range threadsFor(prof, []int{1, 2, 4, 8, 16, 32, 64}) {
		atom := runBFS(o.Backend, prof, g, 1, T, g500Config(), src, o.Seed)
		aamR := runBFS(o.Backend, prof, g, 1, T, aamBFSConfig(&prof, variant, M), src, o.Seed)
		row := []string{itoa(T), fmtMS(atom.Elapsed), fmtMS(aamR.Elapsed),
			speedup(atom.Elapsed, aamR.Elapsed)}
		if baselines {
			gal := runBFS(o.Backend, galProf, g, 1, T, baseline.GaloisBFSConfig(), src, o.Seed)
			hama := runHAMA(o, prof, g, src)
			row = append(row, fmtMS(gal.Elapsed), fmtMS(hama))
			galRatio = speedupF(gal.Elapsed, aamR.Elapsed)
			hamaRatio = speedupF(hama, aamR.Elapsed)
		}
		t.AddRow(row...)
		g5Times = append(g5Times, atom.Elapsed.Millis())
		aamTimes = append(aamTimes, aamR.Elapsed.Millis())
	}

	last := len(aamTimes) - 1
	rep.Checkf(aamTimes[last] < aamTimes[0], "aam scales",
		"T=max %.3f ms vs T=1 %.3f ms (%.1fx)", aamTimes[last], aamTimes[0],
		aamTimes[0]/aamTimes[last])
	if prof.Name == "bgq" {
		rep.Checkf(aamTimes[last] < g5Times[last], "aam wins at full parallelism",
			"aam %.3f ms vs graph500 %.3f ms", aamTimes[last], g5Times[last])
	}
	if baselines {
		rep.Checkf(galRatio > 1.1, "aam beats galois",
			"final-T speedup %.2f (paper: ≈1.2–1.5)", galRatio)
		rep.Checkf(hamaRatio > 20, "aam crushes hama",
			"final-T speedup %.0f (paper: ~2 orders of magnitude)", hamaRatio)
	}
	return rep
}

// runAAMPR times the AAM distributed PageRank.
func runAAMPR(o Options, prof exec.MachineProfile, g *graph.Graph, nodes, T, coalesce int) vtime.Time {
	pr := algo.NewPageRank(g, nodes, algo.PRConfig{
		Iterations: 5,
		Engine: aam.Config{
			M:         8,
			C:         coalesce,
			Mechanism: aam.MechHTM,
			HTM:       prof.HTMVariant("short"),
		},
	})
	m := machine(o.Backend, prof, nodes, T, pr.MemWords(), pr.Handlers(nil), o.Seed)
	res := m.Run(pr.Body())
	return res.Elapsed
}

// runPBGLPR times the PBGL baseline with procs single-threaded processes
// per machine node (modeled as procs*nodes machine nodes).
func runPBGLPR(o Options, prof exec.MachineProfile, g *graph.Graph, nodes, procs int) vtime.Time {
	p := baseline.NewPBGLPageRank(g, nodes*procs, baseline.PBGLConfig{Iterations: 5})
	m := machine(o.Backend, prof, nodes*procs, 1, p.MemWords(), p.Handlers(nil), o.Seed)
	res := m.Run(p.Body())
	return res.Elapsed
}

func runFig7c(o Options) *Report {
	rep := &Report{}
	prof := exec.BGQ()
	n := 1 << o.shift(12, 8) // paper: up to 2^23 vertices, ER=0.0005
	p := 16.0 / float64(n)   // keep d̄≈16 as the reduced-scale equivalent
	g := graph.ErdosRenyi(n, p, o.Seed)
	maxN := 16
	if o.Scale >= 3 {
		maxN = 128
	}
	t := rep.NewTable("PageRank time [s] vs nodes (ER graph)",
		"N", "pbgl-1p", "pbgl-4p", "aam-1t", "aam-4t")
	worst := 1e18
	for _, N := range geomSeq(2, maxN) {
		p1 := runPBGLPR(o, prof, g, N, 1)
		p4 := runPBGLPR(o, prof, g, N, 4)
		a1 := runAAMPR(o, prof, g, N, 1, 256)
		a4 := runAAMPR(o, prof, g, N, 4, 256)
		t.AddRow(itoa(N), fmtS(p1), fmtS(p4), fmtS(a1), fmtS(a4))
		if s := speedupF(p4, a4); s < worst {
			worst = s
		}
	}
	rep.Checkf(worst > 1.5, "aam always ahead of pbgl",
		"min 4-way speedup %.2f (paper: ≈3–10x)", worst)
	return rep
}

func runFig7d(o Options) *Report {
	rep := &Report{}
	prof := exec.BGQ()
	n := 1 << o.shift(12, 8)
	g := graph.ErdosRenyi(n, 16.0/float64(n), o.Seed)
	nodeCounts := []int{4, 16}
	if o.Scale >= 3 {
		nodeCounts = []int{16, 128}
	}
	t := rep.NewTable("PageRank time [s] vs threads/processes per node",
		"T", fmt.Sprintf("pbgl-N%d", nodeCounts[0]), fmt.Sprintf("aam-N%d", nodeCounts[0]),
		fmt.Sprintf("pbgl-N%d", nodeCounts[1]), fmt.Sprintf("aam-N%d", nodeCounts[1]))
	wins, points := 0, 0
	worst := 1e18
	for _, T := range []int{1, 2, 4, 8} {
		row := []string{itoa(T)}
		for _, N := range nodeCounts {
			pb := runPBGLPR(o, prof, g, N, T)
			aa := runAAMPR(o, prof, g, N, T, 256)
			row = append(row, fmtS(pb), fmtS(aa))
			points++
			if aa < pb {
				wins++
			}
			if s := speedupF(pb, aa); s < worst {
				worst = s
			}
		}
		t.AddRow(row...)
	}
	rep.Checkf(wins >= points-1 && worst > 0.9, "aam wins across T",
		"%d/%d points favor AAM, worst ratio %.2f (paper: ≈3–10x everywhere)",
		wins, points, worst)
	return rep
}

func runFig7e(o Options) *Report {
	rep := &Report{}
	prof := exec.BGQ()
	N := 8
	t := rep.NewTable("PageRank time [s] vs vertices per node (ER=denser)",
		"|Vi|", "pbgl-1p", "pbgl-4p", "aam-1t", "aam-4t")
	ok := true
	for _, vi := range []int{1 << o.shift(7, 5), 1 << o.shift(9, 6), 1 << o.shift(11, 7)} {
		n := vi * N
		g := graph.ErdosRenyi(n, 32.0/float64(n), o.Seed)
		p1 := runPBGLPR(o, prof, g, N, 1)
		p4 := runPBGLPR(o, prof, g, N, 4)
		a1 := runAAMPR(o, prof, g, N, 1, 256)
		a4 := runAAMPR(o, prof, g, N, 4, 256)
		t.AddRow(itoa(vi), fmtS(p1), fmtS(p4), fmtS(a1), fmtS(a4))
		if a1 >= p1 || a4 >= p4 {
			ok = false
		}
	}
	rep.Checkf(ok, "gap holds across sizes", "AAM ahead at every |Vi|")
	return rep
}
