package algo

import (
	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

// PageRank rank values live in node memory as Q24.40 fixed point: the rank
// vector sums to ~1.0, i.e. ~2^40 in fixed point, which leaves ample
// headroom in a 64-bit word while additive updates stay exact under
// fetch-and-add.
const prScale = 1 << 40

// PRConfig configures a PageRank execution.
type PRConfig struct {
	Damping    float64
	Iterations int
	Engine     aam.Config
}

// PageRank is the paper's vertex-centric push PageRank (§3.3.1, Listing 3):
// a Fire-and-Forget & Always-Succeed operator adds d·rank(v)/outdeg(v) to
// each neighbor's next-iteration rank; stale ranks from the previous
// iteration are kept in a second array. Activities must always commit —
// concurrent increments of one vertex conflict and retry (or serialize),
// which is exactly the HTM-ACC behaviour studied in §5.4.2.
type PageRank struct {
	G    *graph.Graph
	Part graph.Partition
	Cfg  PRConfig

	rt    *aam.Runtime
	accOp int

	L        int
	rankBase [2]int
}

// NewPageRank prepares a PageRank over g distributed across nodes.
func NewPageRank(g *graph.Graph, nodes int, cfg PRConfig) *PageRank {
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 10
	}
	part := graph.NewPartition(g.N, nodes)
	L := part.MaxLocal()
	p := &PageRank{G: g, Part: part, Cfg: cfg, L: L}
	p.rankBase[0] = 0
	p.rankBase[1] = L
	p.Cfg.Engine.Part = part
	p.Cfg.Engine.LockBase = 2*L + 8

	p.rt = aam.NewRuntime()
	// arg encodes share<<1 | nextParity.
	p.accOp = p.rt.Register(&aam.Op{
		Name:          "pr-acc",
		AlwaysSucceed: true,
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			addr := p.rankBase[arg&1] + v
			tx.Write(addr, tx.Read(addr)+(arg>>1))
			return 0, false
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			ctx.FetchAdd(p.rankBase[arg&1]+v, arg>>1)
			return 0, false
		},
	})
	return p
}

// Handlers splices the PageRank handlers into existing.
func (p *PageRank) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	return p.rt.Handlers(existing)
}

// MemWords returns the node memory size PageRank needs.
func (p *PageRank) MemWords() int { return 2*p.L + p.L + 64 } // ranks + lock region

// Body returns the SPMD run body.
func (p *PageRank) Body() func(ctx exec.Context) {
	return func(ctx exec.Context) { p.run(ctx) }
}

func (p *PageRank) run(ctx exec.Context) {
	eng := aam.NewEngine(p.rt, ctx, p.Cfg.Engine)
	T := ctx.ThreadsPerNode()
	lid := ctx.LocalID()
	me := ctx.NodeID()
	lo, hi := p.Part.Range(me)
	count := hi - lo
	clo := lo + lid*count/T
	chi := lo + (lid+1)*count/T

	base := uint64((1 - p.Cfg.Damping) / float64(p.G.N) * prScale)
	init := uint64(1.0 / float64(p.G.N) * prScale)

	// Initialize iteration-0 ranks.
	for v := clo; v < chi; v++ {
		ctx.Store(p.rankBase[0]+p.Part.Local(v), init)
	}
	ctx.Barrier()

	for it := 0; it < p.Cfg.Iterations; it++ {
		cur := it & 1
		next := cur ^ 1
		// Seed next-iteration ranks with the uniform term.
		for v := clo; v < chi; v++ {
			ctx.Store(p.rankBase[next]+p.Part.Local(v), base)
		}
		ctx.Barrier()

		for v := clo; v < chi; v++ {
			deg := p.G.Degree(v)
			if deg == 0 {
				continue
			}
			rank := ctx.Load(p.rankBase[cur] + p.Part.Local(v))
			share := uint64(float64(rank) * p.Cfg.Damping / float64(deg))
			if share == 0 {
				continue
			}
			neigh := p.G.Neighbors(v)
			ctx.Compute(vtime.Time(len(neigh)/2+1) * ctx.Profile().LoadCost)
			arg := share<<1 | uint64(next)
			for _, w := range neigh {
				eng.Spawn(p.accOp, int(w), arg)
			}
		}
		eng.Drain()
	}
	ctx.Barrier()
}

// Ranks gathers the final rank vector as floats.
func (p *PageRank) Ranks(m exec.Machine) []float64 {
	finalBase := p.rankBase[p.Cfg.Iterations&1]
	out := make([]float64, p.G.N)
	for v := 0; v < p.G.N; v++ {
		node := p.Part.Owner(v)
		out[v] = float64(m.Mem(node)[finalBase+p.Part.Local(v)]) / prScale
	}
	return out
}
