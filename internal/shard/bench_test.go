package shard

import (
	"testing"

	"aamgo/internal/graph"
)

// BenchmarkFlushDrainMessagePath measures one cross-shard operator unit
// through the full coalescing path: spawn into a per-destination buffer,
// size-triggered flush into the owner's inbox, pop and apply. ReportAllocs
// is the regression gate — the steady state must report 0 allocs/op.
func BenchmarkFlushDrainMessagePath(b *testing.B) {
	g := pathGraph(256)
	ex, err := New(g, 1, Config{Shards: 4, BatchSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	inc := ex.Register(&Op{
		Name:   "inc",
		Addr:   func(lv int, arg uint64) int { return lv },
		Mutate: func(c, arg uint64) (uint64, bool) { return c + arg, true },
	})
	sender := ex.shards[0].workers[0]
	drain := func() {
		sender.FlushAll()
		for _, s := range ex.shards[1:] {
			s.drainInbox(s.workers[0])
		}
	}
	// Warm the recycle pool before measuring.
	for i := 0; i < 1024; i++ {
		sender.Spawn(inc, 64+i%192, 1)
	}
	drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sender.Spawn(inc, 64+i%192, 1)
		if i%1024 == 1023 {
			drain()
		}
	}
	b.StopTimer()
	drain()
}

// BenchmarkSSSPBucketRing measures the flat bucket structure the SSSP
// relaxation loop runs on: push into an epoch-stamped ring slot, take the
// list back, recycle. The map[uint64][]int32 structure this replaced
// allocated on nearly every operation.
func BenchmarkSSSPBucketRing(b *testing.B) {
	r := newBucketRing(66)
	// Warm the slot storage across the window.
	for nb := uint64(0); nb < 66; nb++ {
		for lv := int32(0); lv < 32; lv++ {
			r.push(nb, lv)
		}
		r.recycle(r.take(nb))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb := uint64(i) % 1024 // exercises slot reuse across ring wraps
		for lv := int32(0); lv < 32; lv++ {
			r.push(nb, lv)
		}
		r.recycle(r.take(nb))
	}
}

// BenchmarkPartitionOwner compares the two vertex→owner maps on the
// executor's hottest lookup: block division vs edge-balanced binary
// search.
func BenchmarkPartitionOwner(b *testing.B) {
	g := graph.Kronecker(14, 8, 3)
	for _, tc := range []struct {
		name string
		p    graph.Partitioner
	}{
		{"block", graph.NewPartition(g.N, 16)},
		{"edge", graph.NewEdgePartition(g, 16)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += tc.p.Owner(i & (g.N - 1))
			}
			_ = sink
		})
	}
}

// BenchmarkShardedBFSDirection compares push-only against the
// direction-optimizing traversal end to end (the README perf table's
// source).
func BenchmarkShardedBFSDirection(b *testing.B) {
	g := graph.Kronecker(13, 8, 3)
	src := maxDegVertex(g)
	for _, tc := range []struct {
		name string
		dir  Direction
	}{
		{"push", DirPush},
		{"auto", DirAuto},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BFS(g, src, Config{Shards: 4, Dir: tc.dir}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedSSSPBuckets runs the full delta-stepping pass (the flat
// bucket rings under their real access pattern).
func BenchmarkShardedSSSPBuckets(b *testing.B) {
	g := graph.AttachSymmetricWeights(graph.Kronecker(12, 8, 3), 7)
	src := maxDegVertex(g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SSSP(g, src, 0, Config{Shards: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
