package algo

import (
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/run"
)

func simFor(memWords, nodes, threads int, handlers []exec.HandlerFunc, prof exec.MachineProfile) exec.Machine {
	return run.New(run.Sim, exec.Config{
		Nodes:          nodes,
		ThreadsPerNode: threads,
		MemWords:       memWords,
		Profile:        &prof,
		Seed:           3,
		Handlers:       handlers,
	})
}

// --- Boruvka ---

func weightedGraph(seed int64) *graph.Graph {
	b := graph.NewBuilder(400).WithWeights(graph.SymmetricWeight(uint64(seed)))
	g := graph.Kronecker(8, 6, seed)
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				b.AddEdge(int32(u)%400, v%400)
			}
		}
	}
	return b.Dedup().Build()
}

func TestBoruvkaMatchesKruskal(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := weightedGraph(seed)
		want := SeqMSTWeight(g)
		bo := NewBoruvka(g)
		m := simFor(bo.MemWords(), 1, 4, bo.Handlers(nil), exec.HaswellC())
		m.Run(bo.Body(aam.Config{M: 1, Mechanism: aam.MechHTM}))
		if got := bo.Weight(m); got != want {
			t.Fatalf("seed %d: MST weight = %d, want %d", seed, got, want)
		}
		// Components must match the sequential decomposition.
		wantComp := SeqComponents(g)
		gotComp := bo.Components(m)
		canon := map[int32]int32{}
		for v := range gotComp {
			if rep, ok := canon[gotComp[v]]; ok {
				if rep != wantComp[v] {
					t.Fatalf("seed %d: component mismatch at %d", seed, v)
				}
			} else {
				canon[gotComp[v]] = wantComp[v]
			}
		}
	}
}

func TestBoruvkaCoarsened(t *testing.T) {
	g := weightedGraph(7)
	want := SeqMSTWeight(g)
	bo := NewBoruvka(g)
	m := simFor(bo.MemWords(), 1, 2, bo.Handlers(nil), exec.BGQ())
	res := m.Run(bo.Body(aam.Config{M: 4, Mechanism: aam.MechHTM}))
	if got := bo.Weight(m); got != want {
		t.Fatalf("MST weight = %d, want %d", got, want)
	}
	if res.Stats.TxStarted == 0 {
		t.Fatal("expected transactional merges")
	}
}

// --- ST connectivity ---

func TestSTConnConnectedAndNot(t *testing.T) {
	// Two disjoint cliques.
	b := graph.NewBuilder(40)
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			b.AddEdge(int32(u), int32(v))
			b.AddEdge(int32(u+20), int32(v+20))
		}
	}
	g := b.Build()
	check := func(s, d int, want bool, nodes, threads int) {
		sc := NewSTConn(g, nodes)
		m := simFor(sc.MemWords(), nodes, threads, sc.Handlers(nil), exec.HaswellC())
		m.Run(sc.Body(s, d, aam.Config{M: 4, C: 8, Mechanism: aam.MechHTM}))
		if got := sc.Connected(m); got != want {
			t.Fatalf("connected(%d,%d) = %v, want %v", s, d, got, want)
		}
		if want != SeqConnected(g, s, d) {
			t.Fatal("test oracle inconsistent")
		}
	}
	check(0, 19, true, 1, 4)
	check(0, 25, false, 1, 4)
	check(3, 17, true, 2, 2)
	check(5, 39, false, 2, 2)
}

func TestSTConnSameVertex(t *testing.T) {
	g := graph.Kronecker(6, 4, 3)
	sc := NewSTConn(g, 1)
	m := simFor(sc.MemWords(), 1, 2, sc.Handlers(nil), exec.HaswellC())
	m.Run(sc.Body(5, 5, aam.Config{M: 2, Mechanism: aam.MechHTM}))
	if !sc.Connected(m) {
		t.Fatal("vertex must be connected to itself")
	}
}

func TestSTConnOnKronecker(t *testing.T) {
	g := graph.Kronecker(8, 8, 21)
	src := maxDegVertex(g)
	ref := SeqBFS(g, src)
	// Find one reachable and one unreachable target.
	reach, unreach := -1, -1
	for v := 0; v < g.N; v++ {
		if v == src {
			continue
		}
		if ref[v] > 1 && reach < 0 {
			reach = v
		}
		if ref[v] < 0 && unreach < 0 && g.Degree(v) == 0 {
			unreach = v
		}
	}
	for _, tc := range []struct {
		dst  int
		want bool
	}{{reach, true}, {unreach, false}} {
		if tc.dst < 0 {
			continue
		}
		sc := NewSTConn(g, 1)
		m := simFor(sc.MemWords(), 1, 4, sc.Handlers(nil), exec.BGQ())
		m.Run(sc.Body(src, tc.dst, aam.Config{M: 8, Mechanism: aam.MechHTM}))
		if got := sc.Connected(m); got != tc.want {
			t.Fatalf("connected(%d,%d) = %v, want %v", src, tc.dst, got, tc.want)
		}
	}
}

// --- Coloring ---

func TestColoringIsProper(t *testing.T) {
	for _, seed := range []int64{1, 9} {
		g := graph.Kronecker(8, 6, seed)
		c := NewColoring(g)
		m := simFor(c.MemWords(), 1, 4, c.Handlers(nil), exec.HaswellC())
		m.Run(c.Body(aam.Config{M: 4, Mechanism: aam.MechHTM}, 0))
		colors, used := c.Colors(m)
		for v := range colors {
			if colors[v] < 0 {
				t.Fatalf("seed %d: vertex %d uncolored", seed, v)
			}
		}
		if !ValidColoring(g, colors) {
			t.Fatalf("seed %d: improper coloring", seed)
		}
		// The heuristic must not be absurdly worse than greedy.
		_, greedy := GreedyColoring(g)
		if used > 4*greedy+4 {
			t.Fatalf("seed %d: %d colors vs greedy %d", seed, used, greedy)
		}
	}
}

// --- SSSP ---

func TestSSSPMatchesDijkstra(t *testing.T) {
	b := graph.NewBuilder(300).WithWeights(func(u, v int32) uint32 {
		w := graph.SymmetricWeight(5)(u, v)
		return w%100 + 1 // small weights: fewer re-relaxations
	})
	kg := graph.Kronecker(8, 5, 11)
	for u := 0; u < kg.N; u++ {
		for _, v := range kg.Neighbors(u) {
			if int32(u) < v {
				b.AddEdge(int32(u)%300, v%300)
			}
		}
	}
	g := b.Dedup().Build()
	src := maxDegVertex(g)
	want := SeqSSSP(g, src)
	for _, nodes := range []int{1, 2} {
		s := NewSSSP(g, nodes)
		m := simFor(s.MemWords(), nodes, 2, s.Handlers(nil), exec.HaswellC())
		m.Run(s.Body(src, aam.Config{M: 4, C: 8, Mechanism: aam.MechHTM}))
		got := s.Dists(m)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("nodes=%d: dist[%d] = %d, want %d", nodes, v, got[v], want[v])
			}
		}
	}
}

// --- Connected components ---

func TestCCMatchesReference(t *testing.T) {
	g := graph.Kronecker(8, 4, 13)
	want := SeqComponents(g)
	for _, mech := range []aam.Mechanism{aam.MechHTM, aam.MechAtomic} {
		c := NewCC(g, 2)
		m := simFor(c.MemWords(), 2, 2, c.Handlers(nil), exec.BGQ())
		m.Run(c.Body(aam.Config{M: 8, C: 16, Mechanism: mech}))
		got := c.Labels(m)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%v: label[%d] = %d, want %d", mech, v, got[v], want[v])
			}
		}
	}
}

// --- sequential reference sanity ---

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(6)
	if !uf.Union(0, 1) || !uf.Union(2, 3) || !uf.Union(1, 2) {
		t.Fatal("unions should merge")
	}
	if uf.Union(0, 3) {
		t.Fatal("0 and 3 already connected")
	}
	if uf.Find(0) != uf.Find(3) || uf.Find(4) == uf.Find(0) {
		t.Fatal("find wrong")
	}
}

func TestSeqSSSPSimple(t *testing.T) {
	b := graph.NewBuilder(4).WithWeights(func(u, v int32) uint32 {
		// 0-1:1, 1-2:1, 0-2:5, 2-3:2
		key := [2]int32{min32(u, v), max32(u, v)}
		switch key {
		case [2]int32{0, 1}, [2]int32{1, 2}:
			return 1
		case [2]int32{0, 2}:
			return 5
		default:
			return 2
		}
	})
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	d := SeqSSSP(g, 0)
	want := []uint64{0, 1, 2, 4}
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, d[v], want[v])
		}
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func TestGreedyColoringValid(t *testing.T) {
	g := graph.Kronecker(8, 6, 17)
	colors, n := GreedyColoring(g)
	if !ValidColoring(g, colors) {
		t.Fatal("greedy coloring invalid")
	}
	if n <= 0 || n > g.MaxDegree()+1 {
		t.Fatalf("greedy used %d colors, max degree %d", n, g.MaxDegree())
	}
}

func TestSeqComponentsLabelsAreMinIDs(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.Build()
	want := []int32{0, 0, 2, 2, 2, 5}
	got := SeqComponents(g)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}
