// Streaming: the dynamic-graph subsystem in action. Writers stream
// transactional edge batches into a mutable graph — each batch executed as
// AAM operators under a rotating isolation mechanism — while readers run
// the unchanged static analytics (BFS, PageRank) against immutable
// epoch-stamped snapshots and watch the incrementally maintained component
// count converge.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"aamgo"
)

func main() {
	// Start from a fragmented community graph: many clusters, few bridges.
	base := aamgo.Community(1<<12, 32, 4, 0.002, 7)
	g, err := aamgo.NewDynGraph(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base: %d vertices, %d arcs, %d components\n",
		g.N(), g.NumArcs(), g.ComponentCount())

	mechs := []struct {
		name string
		m    aamgo.Mechanism
	}{
		{"htm", aamgo.HTM},
		{"atomic", aamgo.Atomic},
		{"lock", aamgo.Lock},
		{"occ", aamgo.Optimistic},
		{"flatcomb", aamgo.FlatCombining},
	}

	// Readers: freeze the current snapshot and run static analytics while
	// the writer below keeps mutating. Snapshots are immutable, so no
	// coordination is needed.
	var queries atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				f := g.Freeze() // consistent cut; writer continues
				if _, err := aamgo.BFS(f, 0, aamgo.Config{Threads: 2}); err != nil {
					log.Fatal(err)
				}
				queries.Add(1)
			}
		}()
	}

	// Writer: 20 batches of random bridge edges, rotating through all five
	// isolation mechanisms. Inserting bridges merges communities, so the
	// incrementally maintained component count falls batch by batch.
	rng := rand.New(rand.NewSource(99))
	for b := 0; b < 20; b++ {
		batch := make([]aamgo.Mutation, 0, 64)
		for i := 0; i < 64; i++ {
			u, v := int32(rng.Intn(g.N())), int32(rng.Intn(g.N()))
			if u != v {
				batch = append(batch, aamgo.DynAddEdge(u, v))
			}
		}
		mech := mechs[b%len(mechs)]
		res, err := g.Apply(batch, aamgo.DynTxConfig{Mechanism: mech.m, Threads: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %2d [%8s]: +%2d edges (%d dup), %3d aborts, epoch %2d -> %4d components\n",
			b, mech.name, res.Applied, res.Rejected+res.Redundant,
			res.Stats.TotalAborts(), res.Epoch, g.ComponentCount())
	}
	close(stop)
	wg.Wait()

	st := g.Stats()
	fmt.Printf("\ntotals: %d batches, %d applied, %d rejected; %d tx committed, %d aborts, %d retries\n",
		st.Batches, st.Applied, st.Rejected,
		st.Tx.TxCommitted, st.Tx.TotalAborts(), st.Tx.Retries)
	fmt.Printf("concurrent snapshot BFS queries served meanwhile: %d\n", queries.Load())
}
