// Command aam-metricscheck validates a Prometheus text exposition scraped
// from a live aam-serve instance: every non-comment line must parse as
// `name{labels} value`, the total series count must reach -min-series, and
// every base metric name given as an argument must be present. The CI
// bench-smoke job runs it against a /metrics scrape so the exposition
// contract — parseable text spanning the serve, dyn and shard layers —
// is enforced on every push.
//
// Usage:
//
//	aam-metricscheck [-min-series 20] metrics.txt required_base_name...
//
// Example:
//
//	curl -s localhost:8080/metrics > metrics.txt
//	aam-metricscheck -min-series 20 metrics.txt \
//	    aam_serve_requests_total aam_dyn_batches_total aam_shard_remote_units_sent_total
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

var seriesLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

func main() {
	minSeries := flag.Int("min-series", 20, "minimum number of series the exposition must contain")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "aam-metricscheck: usage: aam-metricscheck [-min-series N] metrics.txt required_base_name...")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "aam-metricscheck: %v\n", err)
		os.Exit(1)
	}
	series, errs := check(string(data), *minSeries, flag.Args()[1:])
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "aam-metricscheck: %s\n", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	fmt.Printf("aam-metricscheck: ok (%d series, %d required names present)\n", series, flag.NArg()-1)
}

// check validates the exposition text and returns the series count plus
// every violation found. Extracted from main so the contract is
// unit-testable.
func check(text string, minSeries int, required []string) (series int, errs []string) {
	present := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := seriesLine.FindStringSubmatch(line)
		if m == nil {
			errs = append(errs, fmt.Sprintf("unparseable line %q", line))
			continue
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			errs = append(errs, fmt.Sprintf("bad value in %q: %v", line, err))
			continue
		}
		series++
		// The base name drops the summary/histogram suffixes so required
		// names match whichever series shape the instrument renders as.
		name := m[1]
		present[name] = true
		for _, suf := range []string{"_sum", "_count"} {
			present[strings.TrimSuffix(name, suf)] = true
		}
	}
	if series < minSeries {
		errs = append(errs, fmt.Sprintf("exposition has %d series, want >= %d", series, minSeries))
	}
	for _, name := range required {
		if !present[name] {
			errs = append(errs, fmt.Sprintf("required metric %q missing", name))
		}
	}
	return series, errs
}
