// Package graph provides the compressed-sparse-row graph representation,
// synthetic generators for every graph family used in the paper's
// evaluation (Kronecker/Graph500, Erdős–Rényi, and structural proxies for
// the SNAP real-world graphs of Table 1), edge-list I/O, and the
// one-dimensional partitioning scheme of §3.1.
package graph

import (
	"fmt"
	"slices"
)

// Graph is an adjacency structure in CSR form. For undirected graphs each
// edge is stored in both directions.
//
// Two layouts share the type. In the flat layout (Ends == nil) the
// adjacency of v is Adj[Offsets[v]:Offsets[v+1]] and segments are packed
// back to back. In the patched (slack) layout, produced by incremental
// snapshot freezes, the adjacency of v is Adj[Offsets[v]:Ends[v]]:
// segments may live anywhere in Adj, need not be contiguous or in vertex
// order, and Adj may carry dead space between them. Code that iterates via
// Neighbors/Degree/EdgeWeights/End works on both layouts unchanged; code
// that serializes the raw arrays must go through Flat first.
type Graph struct {
	N       int     // number of vertices
	Offsets []int64 // len N+1; start of v's segment (flat: also the end of v-1's)
	Adj     []int32
	// Ends, when non-nil (len N), marks the end of each vertex's segment:
	// the patched layout of incrementally frozen snapshots.
	Ends []int64
	// Arcs is the explicit stored-arc count of a patched graph; flat
	// graphs leave it 0 (len(Adj) is exact there).
	Arcs int64
	// Weights, when non-nil, parallels Adj (used by Boruvka/SSSP).
	Weights  []uint32
	Directed bool
}

// NumEdges returns the number of stored arcs (2× logical edges for
// undirected graphs).
func (g *Graph) NumEdges() int64 {
	if g.Ends != nil {
		return g.Arcs
	}
	return int64(len(g.Adj))
}

// End returns the index one past v's last arc in Adj (for direct
// positional access; equals Offsets[v+1] on flat graphs).
func (g *Graph) End(v int) int64 {
	if g.Ends != nil {
		return g.Ends[v]
	}
	return g.Offsets[v+1]
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int) int {
	if g.Ends != nil {
		return int(g.Ends[v] - g.Offsets[v])
	}
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the adjacency slice of v (do not modify).
func (g *Graph) Neighbors(v int) []int32 {
	if g.Ends != nil {
		return g.Adj[g.Offsets[v]:g.Ends[v]]
	}
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// EdgeWeights returns the weight slice parallel to Neighbors(v).
func (g *Graph) EdgeWeights(v int) []uint32 {
	if g.Ends != nil {
		return g.Weights[g.Offsets[v]:g.Ends[v]]
	}
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// AvgDegree returns the paper's d̄ = |arcs| / |V|.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.N)
}

// Flat returns g itself when it is already in the flat layout, or a
// freshly packed flat copy of a patched graph (segments in vertex order,
// no slack). Serializers and other raw-array consumers call it before
// touching Offsets/Adj directly.
func (g *Graph) Flat() *Graph {
	if g.Ends == nil {
		return g
	}
	out := &Graph{N: g.N, Directed: g.Directed, Offsets: make([]int64, g.N+1), Adj: make([]int32, 0, g.Arcs)}
	if g.Weights != nil {
		out.Weights = make([]uint32, 0, g.Arcs)
	}
	for v := 0; v < g.N; v++ {
		out.Adj = append(out.Adj, g.Neighbors(v)...)
		if g.Weights != nil {
			out.Weights = append(out.Weights, g.EdgeWeights(v)...)
		}
		out.Offsets[v+1] = int64(len(out.Adj))
	}
	return out
}

// MaxDegree returns the largest out-degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// DegreeHistogram returns counts bucketed by floor(log2(degree+1)).
func (g *Graph) DegreeHistogram() []int64 {
	var hist []int64
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		b := 0
		for x := d + 1; x > 1; x >>= 1 {
			b++
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}

// Validate checks structural invariants and returns an error describing the
// first violation.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: offsets len %d, want %d", len(g.Offsets), g.N+1)
	}
	if g.Weights != nil && len(g.Weights) != len(g.Adj) {
		return fmt.Errorf("graph: weights len %d, adj len %d", len(g.Weights), len(g.Adj))
	}
	if g.Ends != nil {
		// Patched layout: segments are [Offsets[v], Ends[v]) anywhere in
		// Adj; only segment content is constrained, not segment order.
		if len(g.Ends) != g.N {
			return fmt.Errorf("graph: ends len %d, want %d", len(g.Ends), g.N)
		}
		var arcs int64
		for v := 0; v < g.N; v++ {
			lo, hi := g.Offsets[v], g.Ends[v]
			if lo < 0 || hi < lo || hi > int64(len(g.Adj)) {
				return fmt.Errorf("graph: segment [%d,%d) of vertex %d out of range [0,%d]", lo, hi, v, len(g.Adj))
			}
			arcs += hi - lo
			for _, w := range g.Adj[lo:hi] {
				if int(w) < 0 || int(w) >= g.N {
					return fmt.Errorf("graph: neighbor %d of vertex %d out of range", w, v)
				}
			}
		}
		if arcs != g.Arcs {
			return fmt.Errorf("graph: arcs = %d, segments hold %d", g.Arcs, arcs)
		}
		return nil
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.Offsets[0])
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
	}
	if g.Offsets[g.N] != int64(len(g.Adj)) {
		return fmt.Errorf("graph: offsets[N] = %d, want %d", g.Offsets[g.N], len(g.Adj))
	}
	for i, w := range g.Adj {
		if int(w) < 0 || int(w) >= g.N {
			return fmt.Errorf("graph: adj[%d] = %d out of range", i, w)
		}
	}
	return nil
}

// Edge is one endpoint pair used during construction and I/O.
type Edge struct {
	U, V int32
}

// Builder accumulates an edge list and produces a CSR graph.
type Builder struct {
	n          int
	edges      []Edge
	directed   bool
	dedup      bool
	selfLoops  bool
	withWeight func(u, v int32) uint32
}

// NewBuilder returns a Builder for n vertices. By default the graph is
// undirected (each edge stored both ways), self-loops are dropped, and
// parallel edges are kept (as in the Graph500 generator).
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Directed makes the builder store arcs exactly as added.
func (b *Builder) Directed() *Builder { b.directed = true; return b }

// Dedup removes parallel edges during Build.
func (b *Builder) Dedup() *Builder { b.dedup = true; return b }

// KeepSelfLoops retains self-loops (dropped by default).
func (b *Builder) KeepSelfLoops() *Builder { b.selfLoops = true; return b }

// WithWeights attaches a deterministic weight function evaluated per arc.
func (b *Builder) WithWeights(f func(u, v int32) uint32) *Builder {
	b.withWeight = f
	return b
}

// AddEdge appends an edge. Endpoints out of range panic.
func (b *Builder) AddEdge(u, v int32) {
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	b.edges = append(b.edges, Edge{u, v})
}

// NumAdded returns the number of edges added so far.
func (b *Builder) NumAdded() int { return len(b.edges) }

// Build produces the CSR graph via counting sort.
func (b *Builder) Build() *Graph {
	type arc struct{ u, v int32 }
	arcs := make([]arc, 0, len(b.edges)*2)
	for _, e := range b.edges {
		if e.U == e.V && !b.selfLoops {
			continue
		}
		arcs = append(arcs, arc{e.U, e.V})
		if !b.directed {
			arcs = append(arcs, arc{e.V, e.U})
		}
	}
	if b.dedup {
		slices.SortFunc(arcs, func(a, b arc) int {
			if a.u != b.u {
				return int(a.u) - int(b.u)
			}
			return int(a.v) - int(b.v)
		})
		uniq := arcs[:0]
		for i, a := range arcs {
			if i == 0 || a != arcs[i-1] {
				uniq = append(uniq, a)
			}
		}
		arcs = uniq
	}

	g := &Graph{N: b.n, Directed: b.directed}
	g.Offsets = make([]int64, b.n+1)
	for _, a := range arcs {
		g.Offsets[a.u+1]++
	}
	for v := 0; v < b.n; v++ {
		g.Offsets[v+1] += g.Offsets[v]
	}
	g.Adj = make([]int32, len(arcs))
	cursor := make([]int64, b.n)
	for _, a := range arcs {
		pos := g.Offsets[a.u] + cursor[a.u]
		g.Adj[pos] = a.v
		cursor[a.u]++
	}
	if b.withWeight != nil {
		g.Weights = make([]uint32, len(g.Adj))
		for v := 0; v < b.n; v++ {
			base := g.Offsets[v]
			for i, w := range g.Neighbors(v) {
				g.Weights[base+int64(i)] = b.withWeight(int32(v), w)
			}
		}
	}
	return g
}

// SymmetricWeight is a weight function usable with WithWeights that gives
// the same weight to both directions of an undirected edge and avoids
// ties almost surely (required for Boruvka's correctness).
func SymmetricWeight(seed uint64) func(u, v int32) uint32 {
	return func(u, v int32) uint32 {
		a, b := uint64(u), uint64(v)
		if a > b {
			a, b = b, a
		}
		h := mix64(a*0x9E3779B97F4A7C15 ^ b*0xC2B2AE3D27D4EB4F ^ seed)
		// Keep weights positive.
		return uint32(h%0xFFFFFFFE) + 1
	}
}

// AttachSymmetricWeights returns a shallow copy of g carrying
// SymmetricWeight(seed) edge weights: adjacency shared with g, fresh
// weight array. Use it to put an unweighted graph into the metric space
// SSSP and MST require without rebuilding the CSR. A patched graph is
// packed flat first: the weight array parallels Adj, and sizing it to a
// slack arena would allocate (and zero) up to several times the live
// arcs.
func AttachSymmetricWeights(g *Graph, seed uint64) *Graph {
	g = g.Flat()
	wf := SymmetricWeight(seed)
	g2 := *g
	g2.Weights = make([]uint32, len(g.Adj))
	for v := 0; v < g.N; v++ {
		base := g.Offsets[v]
		for i, w := range g.Neighbors(v) {
			g2.Weights[base+int64(i)] = wf(int32(v), w)
		}
	}
	return &g2
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}
