package graph

import "testing"

// checkPartitionerInvariants is checkInvariants generalized over the
// Partitioner interface: disjoint contiguous ranges covering [0, n),
// Owner/Range agreement, Local/Global round-trips, MaxLocal bounds.
func checkPartitionerInvariants(t *testing.T, p Partitioner, n, nodes int) {
	t.Helper()
	covered := 0
	prevHi := 0
	for node := 0; node < nodes; node++ {
		lo, hi := p.Range(node)
		if lo > hi {
			t.Fatalf("n=%d nodes=%d node=%d: inverted range [%d,%d)", n, nodes, node, lo, hi)
		}
		if node > 0 && lo != prevHi {
			t.Fatalf("n=%d nodes=%d node=%d: range [%d,%d) not contiguous after %d", n, nodes, node, lo, hi, prevHi)
		}
		if hi-lo > p.MaxLocal() {
			t.Fatalf("n=%d nodes=%d node=%d: block %d exceeds MaxLocal %d", n, nodes, node, hi-lo, p.MaxLocal())
		}
		covered += hi - lo
		prevHi = hi
	}
	if covered != n {
		t.Fatalf("n=%d nodes=%d: ranges cover %d vertices", n, nodes, covered)
	}

	for v := 0; v < n; v++ {
		o := p.Owner(v)
		if o < 0 || o >= nodes {
			t.Fatalf("n=%d nodes=%d: Owner(%d)=%d out of range", n, nodes, v, o)
		}
		lo, hi := p.Range(o)
		if v < lo || v >= hi {
			t.Fatalf("n=%d nodes=%d: vertex %d not inside its owner's range [%d,%d)", n, nodes, v, lo, hi)
		}
		lv := p.Local(v)
		if lv < 0 || lv >= p.MaxLocal() {
			t.Fatalf("n=%d nodes=%d: Local(%d)=%d outside [0,%d)", n, nodes, v, lv, p.MaxLocal())
		}
		if g := p.Global(o, lv); g != v {
			t.Fatalf("n=%d nodes=%d: Global(Owner(%d), Local(%d)) = %d", n, nodes, v, v, g)
		}
	}
}

// edgeTestGraphs are the degree profiles the edge partition must stay
// sound on: uniform, skewed power-law, a star (one vertex carries half
// the arcs), tiny, single-vertex and empty.
func edgeTestGraphs() map[string]*Graph {
	star := NewBuilder(257)
	for i := 1; i < 257; i++ {
		star.AddEdge(0, int32(i))
	}
	path := NewBuilder(64)
	for i := 0; i+1 < 64; i++ {
		path.AddEdge(int32(i), int32(i+1))
	}
	return map[string]*Graph{
		"kron":      Kronecker(9, 8, 5),
		"ba":        BarabasiAlbert(2000, 4, 99),
		"star":      star.Build(),
		"path":      path.Build(),
		"tiny":      path.Build(),
		"singleton": NewBuilder(1).Build(),
		"empty":     NewBuilder(0).Build(),
	}
}

func TestEdgePartitionInvariantsSweep(t *testing.T) {
	for name, g := range edgeTestGraphs() {
		for _, nodes := range []int{1, 2, 3, 4, 7, 8, 64, 100} {
			p := NewEdgePartition(g, nodes)
			checkPartitionerInvariants(t, p, g.N, nodes)
			// Per-node arc loads must sum to the graph total regardless of
			// where the boundaries fall.
			var total int64
			for node := 0; node < nodes; node++ {
				total += p.ArcLoad(g, node)
			}
			if total != g.NumEdges() {
				t.Fatalf("%s nodes=%d: arc loads sum to %d, want %d", name, nodes, total, g.NumEdges())
			}
		}
	}
}

// TestEdgePartitionBalance pins the balance guarantee: since boundaries
// are placed by prefix-sum target, a node's load overshoots the ideal
// total/nodes by at most one vertex's weight (its boundary vertex is
// indivisible).
func TestEdgePartitionBalance(t *testing.T) {
	for name, g := range edgeTestGraphs() {
		if g.N == 0 {
			continue
		}
		maxVertex := int64(g.MaxDegree() + 1)
		total := g.NumEdges() + int64(g.N)
		for _, nodes := range []int{2, 3, 8, 17} {
			p := NewEdgePartition(g, nodes)
			for node := 0; node < nodes; node++ {
				lo, hi := p.Range(node)
				load := p.ArcLoad(g, node) + int64(hi-lo)
				if ideal := total / int64(nodes); load > ideal+maxVertex {
					t.Fatalf("%s nodes=%d node=%d: load %d exceeds ideal %d + max vertex %d",
						name, nodes, node, load, ideal, maxVertex)
				}
			}
		}
	}
}

// TestEdgePartitionBeatsBlockOnSkew quantifies the point of the scheme:
// on a power-law graph whose hubs are the low vertex ids (preferential
// attachment), the block distribution concentrates arcs on node 0 while
// the edge-balanced boundaries spread them.
func TestEdgePartitionBeatsBlockOnSkew(t *testing.T) {
	g := BarabasiAlbert(4000, 4, 7)
	for _, nodes := range []int{4, 8} {
		block := NewPartition(g.N, nodes)
		edge := NewEdgePartition(g, nodes)
		maxLoad := func(p Partitioner) int64 {
			var worst int64
			for node := 0; node < nodes; node++ {
				lo, hi := p.Range(node)
				if load := g.Offsets[hi] - g.Offsets[lo]; load > worst {
					worst = load
				}
			}
			return worst
		}
		b, e := maxLoad(block), maxLoad(edge)
		if e > b {
			t.Fatalf("nodes=%d: edge partition max load %d worse than block %d", nodes, e, b)
		}
		// The hub block must be measurably imbalanced for this graph to be
		// a meaningful fixture at all, and the edge boundaries must land
		// near the ideal even where block does not.
		ideal := g.NumEdges() / int64(nodes)
		if b <= ideal*3/2 {
			t.Fatalf("nodes=%d: fixture not skewed enough (block max %d vs ideal %d)", nodes, b, ideal)
		}
		if e > ideal*3/2 {
			t.Fatalf("nodes=%d: edge max load %d not near ideal %d (block: %d)", nodes, e, ideal, b)
		}
	}
}

// TestEdgePartitionStarIsolatesHub pins the star layout: the hub's weight
// exceeds every balance target, so it must sit alone on node 0 with the
// leaves spread over the remaining nodes.
func TestEdgePartitionStarIsolatesHub(t *testing.T) {
	b := NewBuilder(1025)
	for i := 1; i < 1025; i++ {
		b.AddEdge(0, int32(i))
	}
	g := b.Build()
	p := NewEdgePartition(g, 4)
	if lo, hi := p.Range(0); lo != 0 || hi != 1 {
		t.Fatalf("hub node range [%d,%d), want [0,1)", lo, hi)
	}
	if p.Owner(0) != 0 || p.Owner(1) == 0 {
		t.Fatalf("hub/leaf ownership wrong: Owner(0)=%d Owner(1)=%d", p.Owner(0), p.Owner(1))
	}
}
