package bench

import (
	"fmt"
	"reflect"
	"time"

	"aamgo/internal/algo"
	"aamgo/internal/gblas"
	"aamgo/internal/graph"
	"aamgo/internal/shard"
)

func init() {
	register(Experiment{
		ID:    "gblas",
		Title: "GraphBLAS engine: masked-SpMV backend vs sharded executor and sequential references",
		Paper: "The paper's §7 positions GraphBLAS accumulations as AAM operators; this " +
			"scenario benchmarks the repo's vectorized realization of that algebra — the " +
			"frontier as a sparse vector, one step as a masked SpMV/SpMSpV over a " +
			"semiring — as the third engine behind the facade. Results must be " +
			"bit-identical to the sharded executor and the sequential references; the " +
			"direction heuristic is shared with the sharded BFS, so the push/pull step " +
			"split is deterministic and gates exactly.",
		Run: runGBLAS,
	})
}

func runGBLAS(o Options) *Report {
	rep := &Report{}
	scale := o.shift(11, 6)
	g := graph.AttachSymmetricWeights(graph.Kronecker(scale, 8, o.Seed), uint64(o.Seed))
	src := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	arcs := float64(g.NumEdges())
	const prIters = 5
	scfg := shard.Config{Shards: 4, BatchSize: 64}

	// References: sequential depths/distances/ranks, sharded runs of the
	// same problems (the cross-engine contract under measurement).
	refDepth := algo.SeqBFS(g, src)
	refDists := algo.SeqSSSP(g, src)
	shardPR, errPR := shard.PageRank(g, 0.85, prIters, scfg)

	t := rep.NewTable("gblas engine vs sharded executor (best-of-5 wall time)",
		"algo", "engine", "wall-ms", "steps", "tput-keps")
	bestOf := func(n int, f func() (time.Duration, error)) (time.Duration, error) {
		best, err := f()
		if err != nil {
			return 0, err
		}
		for i := 1; i < n; i++ {
			if again, err := f(); err == nil && again < best {
				best = again
			}
		}
		return best, nil
	}

	// BFS: level sets must match the sequential depths; the engine's
	// direction switch must engage on the scale-free frontier.
	var bfsRes gblas.EngineResult
	bfsOK := true
	bfsWall, err := bestOf(5, func() (time.Duration, error) {
		parents, levels, res, err := gblas.EngineBFS(g, src)
		if err != nil {
			return 0, err
		}
		bfsRes = res
		for v := range levels {
			if levels[v] != int64(refDepth[v]) {
				return 0, fmt.Errorf("bfs level[%d] = %d, sequential %d", v, levels[v], refDepth[v])
			}
		}
		if err := algo.ValidateBFSTree(g, src, parents, refDepth); err != nil {
			return 0, err
		}
		return res.Elapsed, nil
	})
	if err != nil {
		bfsOK = false
		rep.Notef("FAILED: gblas bfs: %v", err)
	} else {
		t.AddRow("bfs", "gblas", fmt.Sprintf("%.2f", float64(bfsWall.Nanoseconds())/1e6),
			fmt.Sprintf("%dp+%dq", bfsRes.PushSteps, bfsRes.PullSteps),
			fmt.Sprintf("%.0f", arcs/bfsWall.Seconds()/1e3))
		rep.Metricf("gblas.bfs.push_steps", float64(bfsRes.PushSteps))
		rep.Metricf("gblas.bfs.pull_steps", float64(bfsRes.PullSteps))
		rep.Metricf("gblas.bfs.tput.keps", arcs/bfsWall.Seconds()/1e3)
	}
	if sres, err := shard.BFS(g, src, scfg); err == nil {
		t.AddRow("bfs", "shard", fmt.Sprintf("%.2f", float64(sres.Elapsed.Nanoseconds())/1e6),
			fmt.Sprintf("%dp+%dq", sres.PushLevels, sres.PullLevels), "-")
		// Shared heuristic, shared thresholds: the two engines must make
		// the same per-level push/pull decisions.
		if sres.PushLevels != bfsRes.PushSteps || sres.PullLevels != bfsRes.PullSteps {
			bfsOK = false
			rep.Notef("FAILED: direction decisions diverge: gblas %dp+%dq, shard %dp+%dq",
				bfsRes.PushSteps, bfsRes.PullSteps, sres.PushLevels, sres.PullLevels)
		}
	}
	rep.Checkf(bfsOK && bfsRes.PullSteps > 0, "gblas BFS matches and pulls",
		"level sets match the sequential BFS; the shared Beamer heuristic pulled %d of %d steps (same split as the sharded executor)",
		bfsRes.PullSteps, bfsRes.Steps)

	// SSSP: the min-plus fixpoint is unique — distances must equal
	// Dijkstra's bit for bit.
	ssspOK := true
	var ssspRounds int
	ssspWall, err := bestOf(5, func() (time.Duration, error) {
		dists, res, err := gblas.EngineSSSP(g, src)
		if err != nil {
			return 0, err
		}
		ssspRounds = res.Steps
		if !reflect.DeepEqual(dists, refDists) {
			return 0, fmt.Errorf("sssp distances diverge from Dijkstra")
		}
		return res.Elapsed, nil
	})
	if err != nil {
		ssspOK = false
		rep.Notef("FAILED: gblas sssp: %v", err)
	} else {
		t.AddRow("sssp", "gblas", fmt.Sprintf("%.2f", float64(ssspWall.Nanoseconds())/1e6),
			itoa(ssspRounds), fmt.Sprintf("%.0f", arcs/ssspWall.Seconds()/1e3))
		rep.Metricf("gblas.sssp.rounds", float64(ssspRounds))
		rep.Metricf("gblas.sssp.tput.keps", arcs/ssspWall.Seconds()/1e3)
	}
	rep.Checkf(ssspOK, "gblas SSSP matches Dijkstra",
		"min-plus SpMSpV reaches the Bellman fixpoint in %d rounds with bit-identical distances", ssspRounds)

	// PageRank: Q24.40 integer adds commute, so the gblas rank vector must
	// be bit-identical to the sharded executor's at any shard count.
	prOK := errPR == nil
	if errPR != nil {
		rep.Notef("FAILED: shard pagerank reference: %v", errPR)
	}
	prWall, err := bestOf(5, func() (time.Duration, error) {
		ranks, res := gblas.EnginePageRank(g, 0.85, prIters)
		if prOK && !reflect.DeepEqual(ranks, shardPR.Ranks) {
			return 0, fmt.Errorf("pagerank ranks diverge from the sharded executor")
		}
		return res.Elapsed, nil
	})
	if err != nil {
		prOK = false
		rep.Notef("FAILED: gblas pagerank: %v", err)
	} else {
		t.AddRow("pagerank", "gblas", fmt.Sprintf("%.2f", float64(prWall.Nanoseconds())/1e6),
			itoa(prIters), fmt.Sprintf("%.0f", arcs*prIters/prWall.Seconds()/1e3))
		rep.Metricf("gblas.pagerank.tput.keps", arcs*prIters/prWall.Seconds()/1e3)
	}
	rep.Checkf(prOK, "gblas PageRank bit-identical",
		"Q24.40 rank vector equals the sharded executor's after %d iterations", prIters)

	rep.Notef("graph: Kronecker scale %d (%d vertices, %d arcs), src=%d (max degree), symmetric weights wseed=%d",
		scale, g.N, g.NumEdges(), src, o.Seed)
	rep.Notef("tput.keps = stored arcs (× iterations for pagerank) / best-of-5 wall-second / 1e3 " +
		"(machine-dependent; the committed CI baseline holds conservative floors); " +
		"push/pull step splits and sssp rounds are deterministic for a fixed seed and scale")
	return rep
}
