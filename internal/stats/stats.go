// Package stats defines the event counters collected by both machine
// backends. The taxonomy follows the paper's evaluation: transactions are
// classified as committed, serialized (executed under the fallback path), or
// aborted, and aborts are attributed to memory conflicts, HTM buffer
// overflows (capacity/associativity), explicit user aborts, or other causes
// (the paper's "context switches and other reasons caused by hardware/OS").
package stats

import (
	"fmt"
	"strings"
)

// AbortReason classifies why a hardware transaction aborted.
type AbortReason int

const (
	// AbortConflict is a memory conflict with a concurrent transaction,
	// atomic, or fallback-lock holder.
	AbortConflict AbortReason = iota
	// AbortCapacity is an HTM buffer overflow: the speculative read or
	// write set exceeded cache capacity or set associativity.
	AbortCapacity
	// AbortExplicit is a user-initiated abort (May-Fail activity failing
	// at the algorithm level).
	AbortExplicit
	// AbortOther stands for spurious aborts (interrupts, TLB shootdowns,
	// unsupported instructions) modeled as a per-attempt probability.
	AbortOther

	// NumAbortReasons is the number of distinct abort reasons.
	NumAbortReasons
)

// String returns a short human-readable name for the reason.
func (r AbortReason) String() string {
	switch r {
	case AbortConflict:
		return "conflict"
	case AbortCapacity:
		return "capacity"
	case AbortExplicit:
		return "explicit"
	case AbortOther:
		return "other"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Thread holds the counters of a single simulated or native thread.
// Counters are written only by the owning thread while it runs and read
// after the machine has quiesced, so no synchronization is needed.
type Thread struct {
	// Transactions.
	TxStarted    uint64 // transactional regions entered (first attempts)
	TxAttempts   uint64 // total attempts including retries
	TxCommitted  uint64 // speculative commits
	TxSerialized uint64 // executed under the fallback serialization path
	TxUserFailed uint64 // regions that ended with an explicit user abort
	Aborts       [NumAbortReasons]uint64
	Retries      uint64 // re-executions after a hardware abort

	// Plain memory operations.
	AtomicOps uint64 // CAS + fetch-and-op
	CASFail   uint64 // failed compare-and-swap
	Loads     uint64
	Stores    uint64

	// Messaging.
	MsgsSent      uint64 // network packets injected
	MsgWords      uint64 // payload words sent
	HandlersRun   uint64 // active-message handlers executed
	OpsCoalesced  uint64 // operator invocations carried inside coalesced packets
	RepliesSent   uint64 // Fire-and-Return replies
	OwnershipCAS  uint64 // ownership-marker CAS operations (distributed txs)
	OwnershipFail uint64 // ownership acquisition failures (backoffs)

	// Runtime.
	Barriers    uint64
	OpsExecuted uint64 // graph operators executed (activities' work items)
	LockAcqs    uint64 // lock acquisitions (lock mechanism / Galois baseline)
	Supersteps  uint64 // BSP supersteps (HAMA baseline)

	// Extension mechanisms (§7/§8 future work).
	FlatCombined uint64 // operators executed by a combiner on another thread's behalf
	LoweredOps   uint64 // single-operator activities lowered to atomics (§7 pass)
}

// TotalAborts sums hardware aborts over all reasons except explicit user
// aborts, matching the paper's "aborts per data point" annotations.
func (t *Thread) TotalAborts() uint64 {
	return t.Aborts[AbortConflict] + t.Aborts[AbortCapacity] + t.Aborts[AbortOther]
}

// Add accumulates o into t.
func (t *Thread) Add(o *Thread) {
	t.TxStarted += o.TxStarted
	t.TxAttempts += o.TxAttempts
	t.TxCommitted += o.TxCommitted
	t.TxSerialized += o.TxSerialized
	t.TxUserFailed += o.TxUserFailed
	for i := range t.Aborts {
		t.Aborts[i] += o.Aborts[i]
	}
	t.Retries += o.Retries
	t.AtomicOps += o.AtomicOps
	t.CASFail += o.CASFail
	t.Loads += o.Loads
	t.Stores += o.Stores
	t.MsgsSent += o.MsgsSent
	t.MsgWords += o.MsgWords
	t.HandlersRun += o.HandlersRun
	t.OpsCoalesced += o.OpsCoalesced
	t.RepliesSent += o.RepliesSent
	t.OwnershipCAS += o.OwnershipCAS
	t.OwnershipFail += o.OwnershipFail
	t.Barriers += o.Barriers
	t.OpsExecuted += o.OpsExecuted
	t.LockAcqs += o.LockAcqs
	t.Supersteps += o.Supersteps
	t.FlatCombined += o.FlatCombined
	t.LoweredOps += o.LoweredOps
}

// Reset zeroes all counters.
func (t *Thread) Reset() { *t = Thread{} }

// Total is the machine-wide aggregate of per-thread counters.
type Total struct {
	Thread
}

// Merge builds a Total from per-thread counters.
func Merge(threads []Thread) Total {
	var tot Total
	for i := range threads {
		tot.Add(&threads[i])
	}
	return tot
}

// OverflowShare returns the fraction of hardware aborts caused by buffer
// overflows, as annotated in the paper's Figure 4 (Haswell percentages).
func (t *Thread) OverflowShare() float64 {
	a := t.TotalAborts()
	if a == 0 {
		return 0
	}
	return float64(t.Aborts[AbortCapacity]) / float64(a)
}

// SerializationShare returns the ratio of serializations to all hardware
// aborts, as annotated in the paper's Figure 4 (BG/Q percentages).
func (t *Thread) SerializationShare() float64 {
	a := t.TotalAborts()
	if a == 0 {
		return 0
	}
	return float64(t.TxSerialized) / float64(a)
}

// String renders a compact single-line summary.
func (t *Thread) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tx=%d commit=%d serial=%d aborts[conflict=%d capacity=%d explicit=%d other=%d] atomics=%d msgs=%d handlers=%d",
		t.TxStarted, t.TxCommitted, t.TxSerialized,
		t.Aborts[AbortConflict], t.Aborts[AbortCapacity], t.Aborts[AbortExplicit], t.Aborts[AbortOther],
		t.AtomicOps, t.MsgsSent, t.HandlersRun)
	return b.String()
}
