// Command aam-benchdiff is the bench-smoke regression gate: it compares a
// fresh aam-bench -json run against a committed baseline and fails when a
// shared metric regresses beyond the threshold.
//
// Usage:
//
//	aam-benchdiff -baseline BENCH_baseline.json -current BENCH_ci.json [-threshold 0.20]
//
// Metrics gate in three classes, by name: throughput metrics (containing
// ".tput.") are higher-is-better and regress when
// current < baseline × (1 − threshold) — the committed baseline holds
// conservative floors for them; latency metrics (containing ".lat.") are
// lower-is-better and regress when current > baseline × (1 + threshold) —
// the baseline holds conservative ceilings; every other metric is a deterministic
// count (message/batch totals, reduction ratios) for a fixed scale and
// seed, and must match the baseline exactly — any drift, in either
// direction, means the messaging behavior changed and the baseline needs
// a deliberate refresh. Metric sets may be asymmetric, and the two
// directions are deliberately not symmetric: a metric (or a whole
// experiment) present only in the current run is reported as "new, not
// gated" — new scenarios land before their baseline does — while a metric
// or experiment present in the baseline but missing from the current run
// FAILS the gate: coverage silently disappearing is exactly the
// regression the gate exists to catch. Failed shape checks in the current
// run always fail the gate. To refresh the baseline after an intentional
// performance or workload change, rerun aam-bench with the same
// -scale/-seed the CI job uses, re-relax the throughput floors, and
// commit the new file.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"aamgo/internal/bench"
)

func main() {
	var (
		basePath  = flag.String("baseline", "BENCH_baseline.json", "committed baseline metrics")
		curPath   = flag.String("current", "BENCH_ci.json", "freshly generated metrics")
		threshold = flag.Float64("threshold", 0.20, "allowed fractional drop before failing")
	)
	flag.Parse()
	if *threshold < 0 || *threshold >= 1 {
		fatalf("threshold %v out of range [0,1)", *threshold)
	}

	base, err := bench.ReadCI(*basePath)
	if err != nil {
		fatalf("%v", err)
	}
	cur, err := bench.ReadCI(*curPath)
	if err != nil {
		fatalf("%v", err)
	}
	if base.Scale != cur.Scale || base.Seed != cur.Seed {
		fatalf("baseline (scale %d, seed %d) and current (scale %d, seed %d) are not comparable; "+
			"regenerate the baseline with the CI job's flags",
			base.Scale, base.Seed, cur.Scale, cur.Seed)
	}

	regressions, compared := diff(os.Stdout, base, cur, *threshold)
	if regressions > 0 {
		fatalf("%d regression(s) across %d compared metric(s); "+
			"if intentional, refresh the baseline (see aam-benchdiff doc)", regressions, compared)
	}
	fmt.Printf("no regressions across %d compared metric(s)\n", compared)
}

// diff compares current against baseline, writing one line per finding to
// w, and returns the regression and compared-metric counts. Extracted
// from main so the asymmetric-set semantics are unit-testable.
func diff(w io.Writer, base, cur bench.CIReport, threshold float64) (regressions, compared int) {
	for _, id := range sortedKeys(cur.Experiments) {
		ce := cur.Experiments[id]
		if ce.ChecksFailed > 0 {
			fmt.Fprintf(w, "FAIL %s: %d shape check(s) failed in the current run\n", id, ce.ChecksFailed)
			regressions++
		}
		be, ok := base.Experiments[id]
		if !ok {
			fmt.Fprintf(w, "note %s: new experiment, not gated (no baseline entry; "+
				"refresh the baseline to start gating it)\n", id)
			continue
		}
		for _, name := range sortedKeys(ce.Metrics) {
			curV := ce.Metrics[name]
			baseV, ok := be.Metrics[name]
			if !ok {
				fmt.Fprintf(w, "note %s/%s: new metric, not gated (no baseline value)\n", id, name)
				continue
			}
			compared++
			if strings.Contains(name, ".lat.") {
				ceiling := baseV * (1 + threshold)
				status := "ok  "
				if curV > ceiling {
					status = "FAIL"
					regressions++
				}
				fmt.Fprintf(w, "%s %s/%s: current %.4g vs baseline ceiling %.4g (%.4g + %.0f%%)\n",
					status, id, name, curV, ceiling, baseV, threshold*100)
				continue
			}
			if strings.Contains(name, ".tput.") {
				floor := baseV * (1 - threshold)
				status := "ok  "
				if curV < floor {
					status = "FAIL"
					regressions++
				}
				fmt.Fprintf(w, "%s %s/%s: current %.4g vs baseline floor %.4g (%.4g − %.0f%%)\n",
					status, id, name, curV, floor, baseV, threshold*100)
				continue
			}
			// Deterministic count: exact match (tiny relative epsilon for
			// float ratios), both directions — a drop AND a rise mean the
			// messaging behavior changed.
			status := "ok  "
			if !almostEqual(curV, baseV) {
				status = "FAIL"
				regressions++
			}
			fmt.Fprintf(w, "%s %s/%s: current %.10g vs baseline %.10g (exact)\n",
				status, id, name, curV, baseV)
		}
		// A baseline metric the current run no longer produces is lost
		// gate coverage: fail until the baseline is deliberately refreshed.
		for _, name := range sortedKeys(be.Metrics) {
			if _, ok := ce.Metrics[name]; !ok {
				fmt.Fprintf(w, "FAIL %s/%s: baseline metric missing from current run\n", id, name)
				regressions++
			}
		}
	}
	// Same at experiment granularity: a baselined experiment that was not
	// run at all must not pass silently.
	for _, id := range sortedKeys(base.Experiments) {
		if _, ok := cur.Experiments[id]; !ok {
			fmt.Fprintf(w, "FAIL %s: baseline experiment missing from current run\n", id)
			regressions++
		}
	}
	return regressions, compared
}

// almostEqual compares within 1e-9 relative tolerance (deterministic
// ratios survive JSON round-tripping; this absorbs formatting noise only).
func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aam-benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
