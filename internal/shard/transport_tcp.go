package shard

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The tcp transport runs one executor per peer process (rank) in SPMD
// style: every rank executes the same algorithm driver over the same
// graph, owns the block of shards shardOwners assigns it, and holds
// replicas of every other shard's state. Three protocol pieces make that
// equivalent to the single-process executor:
//
//   - Batches for remote-owned shards travel as ftBatch frames and land
//     in the owner's inbox exactly as a local flush would (wire.go).
//     Topology is a star: workers hold one connection to the coordinator,
//     which relays worker→worker frames — frames are counted once, at
//     the origin rank, so the wire metrics are topology-independent.
//   - The barrier ending every Parallel phase allgathers owned state
//     regions, so the quiescent cross-shard reads the algorithm drivers
//     perform between phases (MST component lookups, coloring palettes,
//     result gathers) read replicas that are exactly the owners' words.
//   - Drain quiescence is a counter exchange: each rank contributes
//     (wire batches sent at origin, wire batches enqueued at destination,
//     batches pending in local inboxes); the machine is quiescent iff
//     sent == enqueued and nothing is pending. Sends only happen inside
//     Parallel phases and the exchange is itself a barrier, so the
//     verdict cannot race with new traffic; the enqueue-then-count
//     ordering in deliverLocal makes a late arrival trip at least one of
//     the two conditions. See DESIGN.md §10 for the full argument.
//
// Every collective carries a check word (session fingerprint XOR
// collective ordinal) and both sides verify it: a desynchronized rank —
// diverged op registry, skipped barrier, mismatched config — fails
// loudly instead of reducing garbage.
//
// Protocol failures surface as netFailure panics, recovered at the job
// boundary (Cluster.run / node.serveJobs). Since PR 10 a failure is not
// fatal to the cluster: the coordinator evicts the failed rank, aborts
// the attempt on the survivors (ftAbort) and retries the job over the
// ranks that remain — see DESIGN.md §12 for the failure model and the
// retry soundness argument. Only a fingerprint desync (netFailure.desync)
// still poisons the cluster: retrying divergent code is unsound.

// writeTimeout bounds any single frame write: a peer that stopped reading
// (wedged process, dead NAT entry) eventually fills the TCP window and
// would otherwise block the sender forever. payloadTimeout bounds the
// body phase of a frame read — a link may sit idle indefinitely waiting
// for the next header, but once a header arrives the payload is already
// in flight and must follow promptly.
const (
	writeTimeout   = 2 * time.Minute
	payloadTimeout = 60 * time.Second
)

// errAborted marks a job attempt cancelled on purpose — by an ftAbort
// from the coordinator or the job watchdog — as opposed to one that died
// of a wire fault. Aborts are session-preserving on workers.
var errAborted = errors.New("shard: job attempt aborted")

// netFailure wraps a transport-layer error for the panic/recover hop
// from deep inside the executor to the job boundary.
type netFailure struct {
	err error
	// rank is the session rank to blame, when the failure is attributable
	// to one peer link (-1 otherwise). The coordinator evicts it.
	rank int
	// desync marks a protocol desynchronization (fingerprint/check
	// mismatch): retrying divergent code is unsound, so this — and only
	// this — still poisons the cluster.
	desync bool
	// abort marks a deliberate cancellation (ftAbort, watchdog): the
	// attempt is dead but the session is healthy.
	abort bool
}

// tcpTransport adapts one node (process-wide cluster membership) to one
// executor run. A fresh instance is made per job attempt: the collective
// ordinal and fingerprint restart with it, keeping every rank's check
// sequence aligned; the fingerprint folds in the attempt nonce so frames
// of different attempts can never verify against each other.
type tcpTransport struct {
	node *node
	ex   *Executor
	fp   uint64 // session fingerprint, computed at first collective
	ord  uint64 // collective ordinal
}

func (t *tcpTransport) Name() string          { return "tcp" }
func (t *tcpTransport) endpoints() (int, int) { return t.node.jobRank, t.node.jobRanks }
func (t *tcpTransport) pending() int          { return localPending(t.ex) }

func (t *tcpTransport) attach(ex *Executor) {
	t.ex = ex
	t.node.attachExec(ex)
}

// nextCheck returns the check word for the next collective. The
// fingerprint folds in everything the ranks must agree on — op registry,
// config shape, state width, graph size, attempt nonce — and is computed
// lazily so it sees the full op registry (operators register after New,
// before the first Parallel).
func (t *tcpTransport) nextCheck() uint64 {
	t.node.checkAbort()
	if t.fp == 0 {
		t.fp = execFingerprint(t.ex) ^ (t.node.jobNonce * 0x9E3779B97F4A7C15)
		if t.fp == 0 {
			t.fp = 1 // keep 0 as the "not yet computed" sentinel
		}
	}
	t.ord++
	return t.fp ^ t.ord
}

func execFingerprint(ex *Executor) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(ex.cfg.Shards))
	mix(uint64(ex.cfg.Workers))
	mix(uint64(ex.words))
	mix(uint64(ex.G.N))
	mix(uint64(ex.nranks))
	for _, op := range ex.ops {
		for i := 0; i < len(op.Name); i++ {
			h ^= uint64(op.Name[i])
			h *= prime
		}
		h *= prime
	}
	return h
}

// deliver implements the transport seam of Worker.flush: an inbox append
// for locally-owned shards (identical to inproc), a framed wire send
// otherwise. The batch buffer is recycled immediately after encoding —
// the wire carries a copy — so the sender's buffer circulation is
// unchanged.
//
// A send failure does not panic: deliver runs on Parallel worker
// goroutines where a panic would be unrecovered and kill the process. It
// fails the link instead; the loss is observed at the next collective
// (dead link) or by the drain quiescence counters (sent was incremented,
// recv never will be) and surfaces at the job boundary, where the
// coordinator evicts and retries.
func (t *tcpTransport) deliver(w *Worker, dst int, batch []message) {
	ex, n := t.ex, t.node
	if ex.shardRank[dst] == n.jobRank {
		s := ex.shards[dst]
		s.inbox.mu.Lock()
		s.inbox.batches = append(s.inbox.batches, batch)
		s.inbox.mu.Unlock()
		return
	}
	w.wire = appendBatchPayload(w.wire[:0], dst, batch)
	n.sentWire.Add(1)
	wireBytes := uint64(frameHdrLen + len(w.wire))
	w.stats.WireBatchesSent++
	w.stats.WireBytesSent += wireBytes
	metWireBatchesSent.Inc()
	metWireBatchBytes.Add(wireBytes)
	l := n.routeLink(ex.shardRank[dst])
	if err := l.writeFrame(ftBatch, w.wire); err != nil {
		l.fail(fmt.Errorf("shard: batch send to shard %d: %w", dst, err))
	}
	w.putBuf(batch)
}

func (t *tcpTransport) allreduce(op redOp, vals []uint64) {
	n := t.node
	check := t.nextCheck()
	metNetCollectives.Inc()
	if n.jobRank == 0 {
		t.coordReduce(uint8(op), check, vals)
	} else {
		t.workerReduce(uint8(op), check, vals)
	}
}

// quiesced implements the distributed Drain verdict; see the package
// comment above for why the sample order (recv before pending) closes
// the late-arrival race.
func (t *tcpTransport) quiesced() bool {
	n := t.node
	recv := n.recvWire.Load()
	pend := uint64(localPending(t.ex))
	vals := [3]uint64{n.sentWire.Load(), recv, pend}
	t.allreduce(redSum, vals[:])
	return vals[0] == vals[1] && vals[2] == 0
}

// barrier ends a Parallel phase machine-wide and refreshes every
// non-owned state replica from its owner: each rank contributes its
// owned regions (shard-id order), the coordinator stitches the full
// state image and broadcasts it back.
func (t *tcpTransport) barrier() {
	ex, n := t.ex, t.node
	check := t.nextCheck()
	metNetCollectives.Inc()
	regionBytes := 8 * ex.words * ex.Part.MaxLocal()
	var full []byte
	if n.jobRank == 0 {
		full = make([]byte, regionBytes*ex.cfg.Shards)
		for id, s := range ex.shards {
			if ex.shardRank[id] == 0 {
				encodeState(full[id*regionBytes:(id+1)*regionBytes], s.state)
			}
		}
		for r := 1; r < n.jobRanks; r++ {
			l := n.jobLinks[r]
			kind, c, _, body, err := decodeCollPayload(n.awaitColl(l))
			if err != nil {
				panic(netFailure{err: err, rank: l.peer})
			}
			t.verifyColl(l, kind, collState, c, check)
			off := 0
			for id := range ex.shards {
				if ex.shardRank[id] != r {
					continue
				}
				if off+regionBytes > len(body) {
					panic(netFailure{err: fmt.Errorf("shard: rank %d state blob short at shard %d", r, id), rank: l.peer})
				}
				copy(full[id*regionBytes:(id+1)*regionBytes], body[off:off+regionBytes])
				off += regionBytes
			}
			if off != len(body) {
				panic(netFailure{err: fmt.Errorf("shard: rank %d state blob has %d stray bytes", r, len(body)-off), rank: l.peer})
			}
		}
		res := appendStateCollPayload(nil, check, full)
		for r := 1; r < n.jobRanks; r++ {
			l := n.jobLinks[r]
			if err := l.writeFrame(ftCollRes, res); err != nil {
				panic(netFailure{err: err, rank: l.peer})
			}
		}
	} else {
		body := make([]byte, 0, regionBytes*ex.cfg.Shards/n.jobRanks+regionBytes)
		for id, s := range ex.shards {
			if ex.shardRank[id] == n.jobRank {
				body = appendEncodedState(body, s.state)
			}
		}
		l := n.links[0]
		if err := l.writeFrame(ftColl, appendStateCollPayload(nil, check, body)); err != nil {
			panic(netFailure{err: err, rank: -1})
		}
		kind, c, _, res, err := decodeCollPayload(n.awaitColl(l))
		if err != nil {
			panic(netFailure{err: err, rank: -1})
		}
		t.verifyColl(l, kind, collState, c, check)
		if len(res) != regionBytes*ex.cfg.Shards {
			panic(netFailure{err: fmt.Errorf("shard: state image is %d bytes, want %d", len(res), regionBytes*ex.cfg.Shards), rank: -1})
		}
		full = res
	}
	for id, s := range ex.shards {
		if ex.shardRank[id] != n.jobRank {
			decodeState(s.state, full[id*regionBytes:(id+1)*regionBytes])
		}
	}
	metNetStateBytes.Add(uint64(len(full)))
}

// encodeState serializes state words little-endian into dst (atomic
// loads: worker goroutines of past phases wrote them atomically).
func encodeState(dst []byte, state []uint64) {
	for i := range state {
		v := atomic.LoadUint64(&state[i])
		putU64(dst[i*8:], v)
	}
}

func appendEncodedState(buf []byte, state []uint64) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, 8*len(state))...)
	encodeState(buf[off:], state)
	return buf
}

// decodeState installs a replica region (atomic stores: the next phase's
// workers read these words atomically).
func decodeState(state []uint64, src []byte) {
	for i := range state {
		atomic.StoreUint64(&state[i], getU64(src[i*8:]))
	}
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// verifyColl asserts a collective frame's kind and check word, and
// classifies the failure. A check word that decodes to an earlier
// ordinal of this same attempt is a stale or duplicated frame — a wire
// fault, attributable to the link, safe to retry after eviction. Any
// other mismatch means the ranks genuinely computed different
// fingerprints (diverged op registries, configs, graphs): retrying
// divergent code is unsound, so that stays fatal to the cluster.
func (t *tcpTransport) verifyColl(l *link, kind, wantKind uint8, check, want uint64) {
	if kind == wantKind && check == want {
		return
	}
	if kind == wantKind && t.fp != 0 {
		if gotOrd := check ^ t.fp; gotOrd < t.ord+(1<<20) {
			panic(netFailure{
				err:  fmt.Errorf("shard: stale collective (ordinal %d at ordinal %d)", gotOrd, t.ord),
				rank: l.peer,
			})
		}
	}
	if kind != wantKind {
		panic(netFailure{
			err:    fmt.Errorf("shard: collective kind %d, want %d (ranks desynchronized)", kind, wantKind),
			rank:   l.peer,
			desync: true,
		})
	}
	panic(netFailure{
		err:    fmt.Errorf("shard: collective check %#x, want %#x (op registries or configs diverged)", check, want),
		rank:   l.peer,
		desync: true,
	})
}

// coordReduce runs one collective as job rank 0: collect every
// participant's contribution, combine element-wise into vals, broadcast
// the result.
func (t *tcpTransport) coordReduce(kind uint8, check uint64, vals []uint64) {
	n := t.node
	for r := 1; r < n.jobRanks; r++ {
		l := n.jobLinks[r]
		k, c, v, _, err := decodeCollPayload(n.awaitColl(l))
		if err != nil {
			panic(netFailure{err: err, rank: l.peer})
		}
		t.verifyColl(l, k, kind, c, check)
		if len(v) != len(vals) {
			panic(netFailure{err: fmt.Errorf("shard: rank %d reduced %d values, want %d", r, len(v), len(vals)), rank: l.peer})
		}
		combine(redOp(kind), vals, v)
	}
	res := appendCollPayload(nil, kind, check, vals)
	for r := 1; r < n.jobRanks; r++ {
		l := n.jobLinks[r]
		if err := l.writeFrame(ftCollRes, res); err != nil {
			panic(netFailure{err: err, rank: l.peer})
		}
	}
}

// workerReduce runs one collective as a worker rank: contribute, then
// take the coordinator's verdict.
func (t *tcpTransport) workerReduce(kind uint8, check uint64, vals []uint64) {
	n := t.node
	l := n.links[0]
	if err := l.writeFrame(ftColl, appendCollPayload(nil, kind, check, vals)); err != nil {
		panic(netFailure{err: err, rank: -1})
	}
	k, c, v, _, err := decodeCollPayload(n.awaitColl(l))
	if err != nil {
		panic(netFailure{err: err, rank: -1})
	}
	t.verifyColl(l, k, kind, c, check)
	if len(v) != len(vals) {
		panic(netFailure{err: fmt.Errorf("shard: collective result has %d values, want %d", len(v), len(vals)), rank: -1})
	}
	copy(vals, v)
}

// combine folds contribution v into acc element-wise.
func combine(op redOp, acc, v []uint64) {
	switch op {
	case redSum:
		for i := range acc {
			acc[i] += v[i]
		}
	case redMin:
		for i := range acc {
			if v[i] < acc[i] {
				acc[i] = v[i]
			}
		}
	case redOr:
		for i := range acc {
			acc[i] |= v[i]
		}
	}
}

// node is one process's membership in a cluster: its session rank, its
// links, and the per-attempt routing/quiescence state. It outlives jobs;
// a fresh tcpTransport binds it to each executor.
type node struct {
	// rank/nranks are the session identity: the slot this process holds
	// in the cluster membership and the cluster's full size. They never
	// change while the process is connected.
	rank   int
	nranks int
	// links, indexed by session rank. On the coordinator every worker
	// rank has a link (links[0] is nil); on a worker only links[0] (the
	// coordinator) is set — the star topology.
	links []*link

	// Per-attempt identity. An attempt may run over fewer ranks than the
	// session holds (evicted peers, no replacement): jobRank/jobRanks
	// are this process's place in the attempt's dense rank set, and
	// jobLinks (coordinator only) maps attempt rank → link. Written by
	// startJob under mu (the read loop reads them through routeBatch);
	// the driver side reads them without locks — it runs strictly after
	// its own startJob call.
	jobRank  int
	jobRanks int
	jobNonce uint64
	jobLinks []*link
	// collTimeout is the attempt's collective wait bound, shipped in the
	// job config so all ranks share one failure-detection clock.
	collTimeout time.Duration

	mu     sync.Mutex
	ex     *Executor // current job's executor (nil between jobs)
	owners []int     // current job's shard→rank map (nil between jobs)
	early  [][]byte  // batches that arrived before attachExec
	// armed gates batch routing: set when a job attempt starts, cleared
	// on abort/detach. Batch frames of a dead attempt that are still in
	// flight land here disarmed and are dropped by design — the retry
	// re-initializes all state, so they carry no information.
	armed bool

	// Abort state. requestAbort closes abortCh so every collective wait
	// (and the next nextCheck) unblocks into a clean job-boundary panic;
	// clearAbort re-arms it for the next attempt. abortReq fences stale
	// job specs: runJob discards attempts whose nonce was already
	// aborted. abortDone suppresses duplicate abort requests.
	abortMu   sync.Mutex
	aborted   bool
	abortErr  error
	abortCh   chan struct{}
	abortReq  uint64
	abortDone uint64
	// lastJob is the highest job nonce this worker has started. Nonces
	// are strictly increasing per cluster, so a spec at or below it is a
	// duplicated frame and must be discarded — re-running a completed
	// attempt solo would spray stale collective frames at the
	// coordinator.
	lastJob uint64

	sentWire atomic.Uint64 // wire batches sent at this origin (this job)
	recvWire atomic.Uint64 // wire batches enqueued at this destination
}

func newNode(rank, nranks int, links []*link) *node {
	return &node{
		rank:    rank,
		nranks:  nranks,
		links:   links,
		abortCh: make(chan struct{}),
	}
}

// routeLink returns the link that reaches attempt rank r under the star
// topology.
func (n *node) routeLink(r int) *link {
	if n.jobRank == 0 {
		return n.jobLinks[r]
	}
	return n.links[0]
}

// startJob arms routing and quiescence accounting for one job attempt.
// On the coordinator it must run before the job broadcast: relayable
// frames can arrive the moment a worker has the job. Early-held frames
// are kept — on a worker they belong to this very attempt (quiescence
// guarantees the previous job left nothing in flight; aborts and
// detachExec cleared the rest).
func (n *node) startJob(nonce uint64, jobRank, jobRanks int, owners []int, jobLinks []*link, collTO time.Duration) {
	n.mu.Lock()
	n.jobRank = jobRank
	n.jobRanks = jobRanks
	n.jobNonce = nonce
	n.jobLinks = jobLinks
	n.collTimeout = collTO
	n.owners = owners
	n.armed = true
	n.mu.Unlock()
	n.sentWire.Store(0)
	n.recvWire.Store(0)
}

// arm opens batch routing before the attempt's owners are known: the
// worker read loop calls it on ftJob receipt, so relayed batches of the
// new attempt that beat runJob's startJob are early-buffered instead of
// dropped. Stale-attempt frames cannot be confused in: the coordinator
// only sends a new job after every survivor acknowledged the previous
// attempt's abort, and the ack is FIFO-ordered behind the dead
// attempt's last frame.
func (n *node) arm() {
	n.mu.Lock()
	n.armed = true
	n.mu.Unlock()
}

// attachExec binds the current job's executor and flushes any batches
// that beat it through the handshake (a fast peer can start spawning
// while this rank is still decoding the graph).
func (n *node) attachExec(ex *Executor) {
	n.mu.Lock()
	n.ex = ex
	early := n.early
	n.early = nil
	n.mu.Unlock()
	for _, p := range early {
		if err := n.deliverLocal(ex, n.jobRank, p); err != nil {
			panic(netFailure{err: err, rank: -1})
		}
	}
}

// detachExec ends the job attempt and disarms batch routing; frames of
// the attempt still in flight are dropped on arrival.
func (n *node) detachExec() {
	n.mu.Lock()
	n.ex = nil
	n.owners = nil
	n.early = nil
	n.armed = false
	n.mu.Unlock()
}

// requestAbort cancels the in-flight attempt: every collective wait and
// the next collective entry observe the closed channel and unwind to the
// job boundary with netFailure.abort set.
func (n *node) requestAbort(err error) {
	n.abortMu.Lock()
	if !n.aborted {
		n.aborted = true
		n.abortErr = err
		close(n.abortCh)
	}
	n.abortMu.Unlock()
}

// noteAbort handles an ftAbort request from the coordinator: fence the
// nonce so stale job specs are discarded, disarm batch routing, and
// trigger the local abort. Returns false for duplicates of an abort that
// was already acknowledged.
func (n *node) noteAbort(nonce uint64) bool {
	n.abortMu.Lock()
	if nonce <= n.abortDone {
		n.abortMu.Unlock()
		return false
	}
	if nonce > n.abortReq {
		n.abortReq = nonce
	}
	if !n.aborted {
		n.aborted = true
		n.abortErr = fmt.Errorf("%w (coordinator abort, nonce %d)", errAborted, nonce)
		close(n.abortCh)
	}
	n.abortMu.Unlock()
	n.mu.Lock()
	n.armed = false
	n.early = nil
	n.mu.Unlock()
	return true
}

// clearAbort re-arms the abort channel after the attempt named nonce has
// been fully unwound (collectives drained, ack sent).
func (n *node) clearAbort(nonce uint64) {
	n.abortMu.Lock()
	if n.aborted {
		n.aborted = false
		n.abortErr = nil
		n.abortCh = make(chan struct{})
	}
	if nonce > n.abortDone {
		n.abortDone = nonce
	}
	n.abortMu.Unlock()
}

// abortChan returns the channel closed by the in-flight abort, if any.
func (n *node) abortChan() <-chan struct{} {
	n.abortMu.Lock()
	ch := n.abortCh
	n.abortMu.Unlock()
	return ch
}

// jobFence returns the highest job nonce that must not (re)start: the
// maximum of the aborted and the already-started nonces. runJob
// discards specs at or below it — they are duplicated frames or
// attempts the coordinator has already given up on. The passing nonce
// is recorded as started.
func (n *node) jobFence(nonce uint64) (stale bool) {
	n.abortMu.Lock()
	defer n.abortMu.Unlock()
	if nonce <= n.abortReq || nonce <= n.lastJob {
		return true
	}
	n.lastJob = nonce
	return false
}

// checkAbort panics to the job boundary if an abort is pending.
func (n *node) checkAbort() {
	n.abortMu.Lock()
	aborted, err := n.aborted, n.abortErr
	n.abortMu.Unlock()
	if aborted {
		if err == nil {
			err = errAborted
		}
		panic(netFailure{err: err, rank: -1, abort: true})
	}
}

// awaitColl blocks for the next collective frame on l, converting link
// failure, abort, or timeout into a netFailure.
func (n *node) awaitColl(l *link) []byte {
	to := n.collTimeout
	if to <= 0 {
		to = 2 * time.Minute
	}
	timer := time.NewTimer(to)
	defer timer.Stop()
	select {
	case p := <-l.collCh:
		return p
	case err := <-l.errCh:
		panic(netFailure{err: err, rank: l.peer})
	case <-n.abortChan():
		n.checkAbort()
		panic(netFailure{err: errAborted, rank: -1, abort: true})
	case <-timer.C:
		panic(netFailure{err: fmt.Errorf("shard: collective timed out after %v", to), rank: l.peer})
	}
}

// drainColl discards collective frames buffered on l. Called after an
// abort acknowledgement: the ack is FIFO-ordered behind every frame of
// the dead attempt, so whatever is buffered now is stale and the channel
// is quiet until the next attempt.
func drainColl(l *link) {
	for {
		select {
		case <-l.collCh:
		default:
			return
		}
	}
}

// routeBatch handles one ftBatch frame off the wire: relay if the owner
// is another rank (coordinator only), enqueue locally otherwise. Frames
// arriving while no attempt is armed are stale by construction (their
// attempt was aborted) and are dropped.
func (n *node) routeBatch(payload []byte) error {
	dst, err := batchDst(payload)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if !n.armed {
		n.mu.Unlock()
		return nil
	}
	owners := n.owners
	ex := n.ex
	jobRank := n.jobRank
	jobLinks := n.jobLinks
	if owners == nil {
		if n.rank != 0 {
			// The job frame precedes its batches on the coordinator link
			// (FIFO), but the session layer may still be decoding the job
			// when a fast peer's first flushes arrive: hold the frames,
			// attachExec drains them. The coordinator never takes this
			// path — its startJob sets owners before the job broadcast.
			n.early = append(n.early, payload)
			n.mu.Unlock()
			return nil
		}
		n.mu.Unlock()
		return fmt.Errorf("shard: batch for shard %d with no job active", dst)
	}
	if dst >= len(owners) {
		n.mu.Unlock()
		return fmt.Errorf("shard: batch for shard %d of %d", dst, len(owners))
	}
	owner := owners[dst]
	if owner == jobRank && ex == nil {
		// Owned but the executor isn't up yet: hold the frame.
		n.early = append(n.early, payload)
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()
	if owner != jobRank {
		if jobRank != 0 {
			return fmt.Errorf("shard: worker rank %d asked to relay shard %d to rank %d", jobRank, dst, owner)
		}
		// Relay failure is the TARGET's problem, not the source's: fail
		// that link (the coordinator will evict the target rank) and keep
		// reading from the healthy source.
		tl := jobLinks[owner]
		if err := tl.writeFrame(ftBatch, payload); err != nil {
			tl.fail(fmt.Errorf("shard: relay to rank %d: %w", owner, err))
		}
		return nil
	}
	return n.deliverLocal(ex, jobRank, payload)
}

// deliverLocal decodes a batch frame into the owner shard's inbox. The
// enqueue happens before the recvWire increment — quiesced() relies on
// that order (see the package comment).
func (n *node) deliverLocal(ex *Executor, jobRank int, payload []byte) error {
	dst, msgs, err := decodeBatchPayload(payload, ex.pool.get())
	if err != nil {
		return err
	}
	if ex.shardRank[dst] != jobRank {
		return fmt.Errorf("shard: batch for shard %d delivered to rank %d", dst, jobRank)
	}
	s := ex.shards[dst]
	s.inbox.mu.Lock()
	s.inbox.batches = append(s.inbox.batches, msgs)
	s.inbox.mu.Unlock()
	n.recvWire.Add(1)
	metWireBatchesRecv.Inc()
	return nil
}

// link is one framed connection endpoint. The reader goroutine
// (node.readLoop) demuxes inbound frames: batches route immediately,
// collective frames, jobs and abort nonces queue on channels for the
// session layer.
type link struct {
	conn net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex
	// peer is the session rank on the far end (coordinator side; -1 on
	// workers, whose single link always reaches the coordinator).
	peer int
	// chaos, when non-nil, intercepts writeFrame for deterministic fault
	// injection (chaos.go, tests and the chaos transport only).
	chaos *chaosLink

	collCh chan []byte
	jobCh  chan []byte
	byeCh  chan struct{}
	errCh  chan error
	// abortNonces carries ftAbort nonces: abort requests on a worker's
	// link, acknowledgements on the coordinator's. Bounded and lossy
	// under pathological floods — a lost ack turns into an eviction,
	// never a wedged read loop.
	abortNonces chan uint64

	// lastRecv is the unix-nano stamp of the last frame received; the
	// heartbeat loop reads it to distinguish quiet from dead. lastPing
	// (heartbeat loop only) spaces the probes.
	lastRecv atomic.Int64
	lastPing int64
}

func newLink(conn net.Conn) *link {
	l := &link{
		conn:        conn,
		br:          bufio.NewReaderSize(conn, 64<<10),
		peer:        -1,
		collCh:      make(chan []byte, 4),
		jobCh:       make(chan []byte, 4),
		byeCh:       make(chan struct{}),
		errCh:       make(chan error, 1),
		abortNonces: make(chan uint64, 16),
	}
	l.lastRecv.Store(time.Now().UnixNano())
	return l
}

// writeFrame sends one frame; the write mutex keeps concurrently
// flushing workers (and the relay) from interleaving frames. Each frame
// re-arms the write deadline, so only a transfer that stalls for the full
// writeTimeout fails — sustained slow progress does not.
func (l *link) writeFrame(ft frameType, payload []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if l.chaos != nil {
		return l.chaos.write(l, ft, payload)
	}
	return l.writeFrameLocked(ft, payload, false)
}

// writeFrameLocked is the raw frame write; the caller holds wmu. corrupt
// flips the magic so the receiver rejects the frame at the header (chaos
// injection only).
func (l *link) writeFrameLocked(ft frameType, payload []byte, corrupt bool) error {
	l.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	var hdr [frameHdrLen]byte
	putFrameHeader(hdr[:], ft, len(payload))
	if corrupt {
		hdr[0] ^= 0xFF
	}
	if _, err := l.conn.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := l.conn.Write(payload); err != nil {
			return err
		}
	}
	metNetFramesSent.Inc()
	metNetBytesSent.Add(uint64(frameHdrLen + len(payload)))
	return nil
}

// fail records the link's terminal error (first one wins) and tears the
// connection down, unblocking any reader.
func (l *link) fail(err error) {
	select {
	case l.errCh <- err:
	default:
	}
	l.conn.Close()
}

// readLoop demuxes inbound frames until the connection dies or says bye.
// The header wait is deadline-free (links idle between jobs); the payload
// phase is bounded by payloadTimeout. Control frames (ping/pong/abort)
// are length-capped at the header (frameLenCap) and exact-checked here,
// so a hostile peer can neither over-allocate nor wedge the loop with
// them.
func (n *node) readLoop(l *link) {
	for {
		ft, size, err := readFrameHeader(l.br)
		if err != nil {
			l.fail(fmt.Errorf("shard: wire read: %w", err))
			return
		}
		l.conn.SetReadDeadline(time.Now().Add(payloadTimeout))
		payload, err := readFramePayload(l.br, size)
		if err != nil {
			l.fail(fmt.Errorf("shard: wire read: %w", err))
			return
		}
		l.conn.SetReadDeadline(time.Time{})
		l.lastRecv.Store(time.Now().UnixNano())
		metNetFramesRecv.Inc()
		metNetBytesRecv.Add(uint64(frameHdrLen + len(payload)))
		switch ft {
		case ftBatch:
			if err := n.routeBatch(payload); err != nil {
				l.fail(err)
				return
			}
		case ftColl, ftCollRes:
			l.collCh <- payload
		case ftJob:
			if n.rank != 0 {
				// Arm routing now: relayed batches of this attempt may land
				// before serveJobs gets to startJob (they early-buffer).
				n.arm()
			}
			select {
			case l.jobCh <- payload:
			default:
				// A full job queue means the peer is spraying attempts
				// faster than they can be discarded: protocol violation.
				l.fail(fmt.Errorf("shard: job queue overflow"))
				return
			}
		case ftPing:
			if len(payload) != 8 {
				l.fail(fmt.Errorf("shard: ping payload %d bytes, want 8", len(payload)))
				return
			}
			if err := l.writeFrame(ftPong, payload); err != nil {
				l.fail(fmt.Errorf("shard: pong: %w", err))
				return
			}
		case ftPong:
			if len(payload) != 8 {
				l.fail(fmt.Errorf("shard: pong payload %d bytes, want 8", len(payload)))
				return
			}
			if ts := int64(getU64(payload)); ts > 0 {
				if rtt := time.Now().UnixNano() - ts; rtt >= 0 {
					metClusterHeartbeatRTT.Record(uint64(rtt))
				}
			}
		case ftAbort:
			if len(payload) != 8 {
				l.fail(fmt.Errorf("shard: abort payload %d bytes, want 8", len(payload)))
				return
			}
			nonce := getU64(payload)
			if n.rank == 0 {
				// Acknowledgement from a worker.
				select {
				case l.abortNonces <- nonce:
				default:
				}
			} else if n.noteAbort(nonce) {
				select {
				case l.abortNonces <- nonce:
				default:
				}
			}
		case ftBye:
			close(l.byeCh)
			return
		case ftError:
			l.fail(fmt.Errorf("shard: peer failed: %s", payload))
			return
		default:
			l.fail(fmt.Errorf("shard: unexpected %d frame", ft))
			return
		}
	}
}
