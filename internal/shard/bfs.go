package shard

import (
	"fmt"
	"time"

	"aamgo/internal/graph"
)

// BFSResult carries the sharded BFS tree: Parents[v] is the global parent
// of v (the source's parent is itself), or -1 when unreachable.
type BFSResult struct {
	Parents []int64
	// Levels is the BFS depth reached (number of frontier expansions).
	Levels int
	Result
}

// BFS runs a level-synchronized breadth-first search from src across
// cfg.Shards graph shards. Marking a vertex is the paper's FF&MF operator
// (Listing 4): exactly one activity wins each vertex, losers fail benignly.
// Cross-shard discoveries travel as coalesced mark batches; the Drain
// barrier between levels guarantees the depth labeling is identical to the
// sequential BFS regardless of shard count, batch size or flush policy.
func BFS(g *graph.Graph, src int, cfg Config) (BFSResult, error) {
	if src < 0 || src >= g.N {
		return BFSResult{}, fmt.Errorf("shard: BFS source %d out of range [0,%d)", src, g.N)
	}
	ex, err := New(g, 1, cfg) // one word per vertex: parent+1, 0 = unvisited
	if err != nil {
		return BFSResult{}, err
	}

	// Per-worker frontier segments: cur is consumed, next receives
	// discoveries from the mark operator's commit hook. Entries are
	// owner-local vertex ids; a worker only ever appends to its own
	// segment, so no isolation is needed.
	W := ex.Workers()
	cur := make([][]int32, W)
	next := make([][]int32, W)

	mark := ex.Register(&Op{
		Name: "bfs-mark",
		Addr: func(lv int, arg uint64) int { return lv },
		Mutate: func(c, arg uint64) (uint64, bool) {
			if c != 0 {
				return 0, false // already visited: May-Fail failure
			}
			return arg + 1, true
		},
		OnCommit: func(w *Worker, lv int, arg uint64) {
			i := w.Index()
			next[i] = append(next[i], int32(lv))
		},
	})

	t0 := time.Now()
	// Seed the source into its owner shard.
	owner := ex.Part.Owner(src)
	ls := ex.Part.Local(src)
	ex.shards[owner].Store(ls, uint64(src)+1)
	seedWorker := owner * ex.cfg.Workers // worker 0 of the owner shard
	cur[seedWorker] = append(cur[seedWorker], int32(ls))

	levels := 0
	for {
		ex.Parallel(func(w *Worker) {
			s := w.S
			i := w.Index()
			for _, lv := range cur[i] {
				u := ex.Part.Global(s.ID, int(lv))
				for _, wv := range g.Neighbors(u) {
					gw := int(wv)
					// The §4.2 visited check: a plain local read skips
					// spawning for vertices this shard already marked.
					// Stale reads are benign — the operator re-tests.
					if ex.Part.Owner(gw) == s.ID && s.Load(ex.Part.Local(gw)) != 0 {
						continue
					}
					w.Spawn(mark, gw, uint64(u))
				}
			}
		})
		ex.Drain()

		total := 0
		for i := range cur {
			cur[i] = cur[i][:0]
			total += len(next[i])
		}
		cur, next = next, cur
		if total == 0 {
			break
		}
		levels++
	}
	elapsed := time.Since(t0)

	parents := make([]int64, g.N)
	for v := 0; v < g.N; v++ {
		raw := ex.shards[ex.Part.Owner(v)].Load(ex.Part.Local(v))
		parents[v] = int64(raw) - 1
	}
	res := ex.Result()
	res.Elapsed = elapsed
	return BFSResult{Parents: parents, Levels: levels, Result: res}, nil
}
