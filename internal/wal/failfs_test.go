package wal

import (
	"errors"
	"os"
	"testing"

	"aamgo/internal/dyn"
)

// failfs: a fault-injecting segFile. Each variant models one way the disk
// betrays the committer:
//
//	torn   the write persists a prefix of the buffer, then errors —
//	       exactly the partial record a power cut leaves behind
//	clean  the write fails before persisting anything (error-after-N
//	       with no partial bytes)
//	sync   writes succeed but the fsync itself fails
//
// The budget counts bytes from the start of the segment (header included),
// so sweeping it walks the failure across every record boundary.

var errInjected = errors.New("failfs: injected fault")

type failKind int

const (
	failTorn failKind = iota
	failClean
	failSync
)

type failSeg struct {
	f      *os.File
	kind   failKind
	budget int64 // bytes that may still be written; -1 = unlimited
}

func (fs *failSeg) Write(p []byte) (int, error) {
	if fs.budget < 0 || int64(len(p)) <= fs.budget {
		if fs.budget >= 0 {
			fs.budget -= int64(len(p))
		}
		return fs.f.Write(p)
	}
	keep := int(fs.budget)
	fs.budget = 0
	switch fs.kind {
	case failTorn:
		if keep > 0 {
			fs.f.Write(p[:keep])
		}
		return keep, errInjected
	case failClean:
		return 0, errInjected
	default: // failSync: the write itself still lands
		n, err := fs.f.Write(p)
		if err != nil {
			return n, err
		}
		return n, nil
	}
}

func (fs *failSeg) Sync() error {
	if fs.kind == failSync && fs.budget == 0 {
		return errInjected
	}
	return fs.f.Sync()
}

func (fs *failSeg) Close() error { return fs.f.Close() }

// installFailFS arms testWrapSeg so the FIRST segment opened after this
// call carries the fault; later segments (recovery reopens) are clean.
func installFailFS(t *testing.T, kind failKind, budget int64) {
	t.Helper()
	armed := false
	testWrapSeg = func(f *os.File) segFile {
		if armed {
			return f
		}
		armed = true
		return &failSeg{f: f, kind: kind, budget: budget}
	}
	t.Cleanup(func() { testWrapSeg = nil })
}

// TestFailFSInjection sweeps each fault kind across byte budgets covering
// the segment header and several positions inside each of the first three
// records. Under ModeFsync an acknowledged Apply implies an fsynced
// record, so the invariant checked after recovery is exact: every
// acknowledged batch survives, no unacknowledged partial record does.
func TestFailFSInjection(t *testing.T) {
	const perBatch = 8
	rs := int64(recordSize(perBatch))
	var budgets []int64
	budgets = append(budgets, 0, 3, segHeaderLen) // inside / right after the header
	for rec := int64(0); rec < 3; rec++ {
		start := segHeaderLen + rec*rs
		budgets = append(budgets,
			start+4,              // mid record header
			start+recHeaderLen+2, // early payload
			start+rs-1,           // one byte short of the boundary
			start+rs,             // exactly at the boundary
		)
	}

	for _, kind := range []failKind{failTorn, failClean, failSync} {
		for _, budget := range budgets {
			name := map[failKind]string{failTorn: "torn", failClean: "clean", failSync: "sync"}[kind]
			t.Run(name+"/"+itoa(budget), func(t *testing.T) {
				dir := t.TempDir()
				installFailFS(t, kind, budget)

				opts := Options{Dir: dir, Mode: ModeFsync}
				g, l, err := Open(opts, testBase)
				if err != nil {
					// The fault fired while writing the segment header:
					// failing Open cleanly is the correct outcome.
					if budget >= segHeaderLen {
						t.Fatalf("open failed with budget %d: %v", budget, err)
					}
					return
				}
				n := g.N()
				acked := 0
				for i := 1; i <= 6; i++ {
					_, err := g.Apply(testBatch(i, n, perBatch), testTx)
					if err != nil {
						if !errors.Is(err, dyn.ErrDurability) {
							t.Fatalf("apply %d: unexpected error class: %v", i, err)
						}
						break
					}
					acked++
				}
				if acked == 6 {
					t.Fatal("fault never fired")
				}
				// The failure is sticky: later applies must not ack either.
				if _, err := g.Apply(testBatch(99, n, perBatch), testTx); !errors.Is(err, dyn.ErrDurability) {
					t.Fatalf("poisoned log acked a batch (err=%v)", err)
				}
				l.Close() // error expected; recovery below is the judge

				testWrapSeg = nil
				g2, l2, err := Open(opts, testBase)
				if err != nil {
					t.Fatalf("recovery: %v", err)
				}
				defer l2.Close()
				recovered := int(g2.Epoch())
				if recovered < acked {
					t.Fatalf("lost acknowledged batches: recovered epoch %d < %d acked", recovered, acked)
				}
				if recovered > 6 {
					t.Fatalf("recovered epoch %d beyond anything applied", recovered)
				}
				requireEqualGraphs(t, oracle(t, recovered, perBatch), g2)
			})
		}
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
