package aam

import (
	"fmt"
	"sync"

	"aamgo/internal/exec"
	"aamgo/internal/vtime"
)

// Flat combining (Hendler, Incze, Shavit & Tzafrir [17], named in the
// paper's conclusion as an alternative isolation mechanism): instead of
// every thread fighting for per-vertex locks or speculating, each thread
// publishes its activity in a per-node publication array and the current
// holder of a single combiner lock executes every published activity. One
// lock acquisition amortizes over all concurrently published batches, so
// synchronization traffic collapses to a single contended word.
//
// Memory layout: the mechanism repurposes the per-vertex lock region
// (Config.LockBase) — MechLock and MechFlatCombining cannot be mixed in one
// run. Word 0 is the combiner lock; words 1..T are the per-thread "ready"
// flags; words T+1..2T are the per-thread "done" flags. The flags carry the
// cross-thread visibility on both backends (they are plain sim words and
// sync/atomic words natively), while the operator records themselves travel
// through a host-side publication slot.
//
// Like the lock mechanism, flat combining executes bodies directly (no
// rollback), so AbortOnFail operators are rejected. Operator bodies run on
// the combiner's engine: per-thread resources they touch (e.g. a BFS
// frontier segment) are the combiner's, which is exactly the semantics of
// flat combining — the combiner does the work.

// fcSlot is one thread's publication record. recs/rets are written by the
// publishing thread before it raises its ready flag and read by the
// combiner after observing the flag (atomic flag accesses on the native
// backend give the necessary happens-before ordering).
type fcSlot struct {
	recs []rec
	rets []retSlot
}

// fcNode is the per-node combining structure shared by the node's engines.
type fcNode struct {
	base  int // == Config.LockBase
	T     int
	slots []fcSlot
}

func (f *fcNode) lockAddr() int       { return f.base }
func (f *fcNode) readyAddr(t int) int { return f.base + 1 + t }
func (f *fcNode) doneAddr(t int) int  { return f.base + 1 + f.T + t }

// fcWords returns the number of lock-region words flat combining needs for
// T threads.
func fcWords(T int) int { return 1 + 2*T }

// fcFor returns (creating on first use) the combining structure of ctx's
// node. Engines of one node share one fcNode; the runtime mutex guards only
// creation.
func (rt *Runtime) fcFor(ctx exec.Context, lockBase int) *fcNode {
	T := ctx.ThreadsPerNode()
	if lockBase+fcWords(T) > ctx.MemSize() {
		panic(fmt.Sprintf("aam: flat combining needs %d words at LockBase %d but node memory has %d",
			fcWords(T), lockBase, ctx.MemSize()))
	}
	rt.fcMu.Lock()
	defer rt.fcMu.Unlock()
	if rt.fcNodes == nil {
		rt.fcNodes = make(map[int]*fcNode)
	}
	f := rt.fcNodes[ctx.NodeID()]
	if f == nil {
		f = &fcNode{base: lockBase, T: T, slots: make([]fcSlot, T)}
		rt.fcNodes[ctx.NodeID()] = f
	} else if f.base != lockBase {
		panic("aam: engines of one node disagree on LockBase")
	}
	return f
}

// fcMu and fcNodes live on the Runtime; declared here to keep the flat-
// combining state in one file.
type fcState struct {
	fcMu    sync.Mutex
	fcNodes map[int]*fcNode
}

// fcSpinQuantum is the virtual time one failed combiner-lock probe costs
// while waiting for the combiner to finish.
const fcSpinQuantum = 30 * vtime.Nanosecond

// runFlatCombined publishes the batch and either waits for a combiner to
// execute it or becomes the combiner itself.
func (e *Engine) runFlatCombined(recs []rec, rets []retSlot) {
	ctx := e.ctx
	f := e.fc
	if f == nil {
		f = e.rt.fcFor(ctx, e.cfg.LockBase)
		e.fc = f
	}
	lid := ctx.LocalID()
	slot := &f.slots[lid]
	for _, r := range recs {
		if op := e.rt.ops[r.op]; op.AbortOnFail {
			panic(fmt.Sprintf("aam: operator %q needs rollback; not expressible with flat combining", op.Name))
		}
	}
	slot.recs, slot.rets = recs, rets
	ctx.Store(f.readyAddr(lid), 1)

	for {
		if ctx.Load(f.doneAddr(lid)) == 1 {
			// A combiner executed our batch.
			ctx.Store(f.doneAddr(lid), 0)
			slot.recs, slot.rets = nil, nil
			return
		}
		if ctx.CAS(f.lockAddr(), 0, 1) {
			break // we are the combiner
		}
		ctx.Compute(fcSpinQuantum)
	}
	ctx.Stats().LockAcqs++

	// Re-check under the lock: the previous combiner may have finished our
	// batch between the flag probe and the CAS.
	if ctx.Load(f.doneAddr(lid)) == 1 {
		ctx.Store(f.doneAddr(lid), 0)
		slot.recs, slot.rets = nil, nil
		ctx.Store(f.lockAddr(), 0)
		return
	}

	// Combining pass: execute every published batch, our own included.
	tx := directTx{ctx: ctx}
	for t := 0; t < f.T; t++ {
		if ctx.Load(f.readyAddr(t)) != 1 {
			continue
		}
		s := &f.slots[t]
		for i, r := range s.recs {
			op := e.rt.ops[r.op]
			ret, fail := op.Body(tx, e, int(r.v), r.arg)
			s.rets[i] = retSlot{ret: ret, fail: fail}
		}
		ctx.Store(f.readyAddr(t), 0)
		if t != lid {
			ctx.Stats().FlatCombined += uint64(len(s.recs))
			ctx.Store(f.doneAddr(t), 1)
		}
	}
	slot.recs, slot.rets = nil, nil
	ctx.Store(f.lockAddr(), 0)
}
