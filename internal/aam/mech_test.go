package aam_test

import (
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/sim"
)

// The extension mechanisms of the paper's conclusion (optimistic locking,
// flat combining) and the §7 lowering pass must preserve the semantics of
// the reference mechanisms. These tests run the same contended workloads
// under every mechanism and compare final memory states.

func TestOCCProducesSameStateAsHTM(t *testing.T) {
	for _, threads := range []int{1, 4, 8} {
		w := newCounting()
		m := engineMachine(t, w, 1, threads, 11)
		m.Run(func(ctx exec.Context) {
			eng := aam.NewEngine(w.rt, ctx, aam.Config{
				M: 8, Mechanism: aam.MechOptimistic,
				Part:     graph.NewPartition(1<<10, 1),
				LockBase: 1 << 11,
			})
			for i := 0; i < 100; i++ {
				eng.Spawn(w.op, (ctx.GlobalID()*13+i)%37, 1)
			}
			eng.Drain()
		})
		sum := uint64(0)
		for i := 0; i < 37; i++ {
			sum += m.Mem(0)[i]
		}
		if want := uint64(100 * threads); sum != want {
			t.Fatalf("T=%d: applied sum = %d, want %d", threads, sum, want)
		}
	}
}

func TestOCCCountsValidationConflicts(t *testing.T) {
	// All threads hammer a single vertex: validation failures must be
	// visible as conflict aborts with retries.
	w := newCounting()
	m := engineMachine(t, w, 1, 8, 12)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 1, Mechanism: aam.MechOptimistic,
			Part:     graph.NewPartition(1<<10, 1),
			LockBase: 1 << 11,
		})
		for i := 0; i < 200; i++ {
			eng.Spawn(w.op, 0, 1)
		}
		eng.Drain()
	})
	if got := m.Mem(0)[0]; got != 1600 {
		t.Fatalf("contended counter = %d, want 1600", got)
	}
	if res.Stats.TxCommitted != 1600 {
		t.Fatalf("commits = %d, want 1600", res.Stats.TxCommitted)
	}
	if res.Stats.Retries == 0 {
		t.Fatal("8 threads on one vertex produced no OCC validation retries")
	}
}

func TestOCCSupportsAbortOnFail(t *testing.T) {
	// Unlike locks and flat combining, OCC can roll back a whole activity:
	// the buffered writes are simply discarded.
	rt := aam.NewRuntime()
	op := rt.Register(&aam.Op{
		Name:        "occ-all-or-nothing",
		AbortOnFail: true,
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			tx.Write(v, arg)
			return 0, arg == 13
		},
	})
	prof := exec.BGQ()
	m := sim.New(exec.Config{
		Nodes: 1, ThreadsPerNode: 1, MemWords: 1 << 10,
		Profile: &prof, Handlers: rt.Handlers(nil), Seed: 13,
	})
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(rt, ctx, aam.Config{
			M: 4, Mechanism: aam.MechOptimistic,
			Part: graph.NewPartition(256, 1), LockBase: 512,
		})
		eng.Spawn(op, 0, 7)
		eng.Spawn(op, 1, 8)
		eng.Spawn(op, 2, 13) // poisons the whole batch
		eng.Spawn(op, 3, 9)
		eng.Drain()
	})
	for i := 0; i < 4; i++ {
		if got := m.Mem(0)[i]; got != 0 {
			t.Fatalf("word %d = %d after rolled-back OCC activity", i, got)
		}
	}
	if res.Stats.TxUserFailed != 1 {
		t.Fatalf("user-failed activities = %d, want 1", res.Stats.TxUserFailed)
	}
}

func TestOCCVersionsEndEven(t *testing.T) {
	// After quiescence every version cell must be even (unlocked).
	w := newCounting()
	m := engineMachine(t, w, 1, 4, 14)
	m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 4, Mechanism: aam.MechOptimistic,
			Part:     graph.NewPartition(1<<10, 1),
			LockBase: 1 << 11,
		})
		for i := 0; i < 64; i++ {
			eng.Spawn(w.op, i%16, 1)
		}
		eng.Drain()
	})
	for i := 0; i < 16; i++ {
		if v := m.Mem(0)[(1<<11)+i]; v&1 != 0 {
			t.Fatalf("version cell %d = %d still locked after quiescence", i, v)
		}
	}
}

func TestFlatCombiningProducesSameState(t *testing.T) {
	for _, threads := range []int{1, 4, 8} {
		w := newCounting()
		m := engineMachine(t, w, 1, threads, 15)
		m.Run(func(ctx exec.Context) {
			eng := aam.NewEngine(w.rt, ctx, aam.Config{
				M: 8, Mechanism: aam.MechFlatCombining,
				Part:     graph.NewPartition(1<<10, 1),
				LockBase: 1 << 11,
			})
			for i := 0; i < 100; i++ {
				eng.Spawn(w.op, (ctx.GlobalID()*7+i)%37, 1)
			}
			eng.Drain()
		})
		sum := uint64(0)
		for i := 0; i < 37; i++ {
			sum += m.Mem(0)[i]
		}
		if want := uint64(100 * threads); sum != want {
			t.Fatalf("T=%d: applied sum = %d, want %d", threads, sum, want)
		}
	}
}

func TestFlatCombiningCombines(t *testing.T) {
	// With many threads publishing concurrently, some batches must be
	// executed by a combiner on another thread's behalf.
	w := newCounting()
	m := engineMachine(t, w, 1, 8, 16)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 2, Mechanism: aam.MechFlatCombining,
			Part:     graph.NewPartition(1<<10, 1),
			LockBase: 1 << 11,
		})
		for i := 0; i < 400; i++ {
			eng.Spawn(w.op, i%64, 1)
		}
		eng.Drain()
	})
	if got := res.Stats.OpsExecuted; got != 3200 {
		t.Fatalf("operators = %d, want 3200", got)
	}
	if res.Stats.FlatCombined == 0 {
		t.Fatal("no operator was flat-combined despite 8 contending threads")
	}
	sum := uint64(0)
	for i := 0; i < 64; i++ {
		sum += m.Mem(0)[i]
	}
	if sum != 3200 {
		t.Fatalf("applied sum = %d, want 3200", sum)
	}
}

func TestMechanismStringNames(t *testing.T) {
	names := map[aam.Mechanism]string{
		aam.MechHTM:           "htm",
		aam.MechAtomic:        "atomic",
		aam.MechLock:          "lock",
		aam.MechOptimistic:    "occ",
		aam.MechFlatCombining: "flatcomb",
	}
	for mech, want := range names {
		if got := mech.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(mech), got, want)
		}
	}
}

func TestAllMechanismsAgreeUnderContention(t *testing.T) {
	// The five mechanisms must converge to identical final counters on an
	// identical contended workload.
	mechs := []aam.Mechanism{
		aam.MechHTM, aam.MechAtomic, aam.MechLock,
		aam.MechOptimistic, aam.MechFlatCombining,
	}
	var ref []uint64
	for _, mech := range mechs {
		w := newCounting()
		m := engineMachine(t, w, 1, 6, 18)
		m.Run(func(ctx exec.Context) {
			eng := aam.NewEngine(w.rt, ctx, aam.Config{
				M: 4, Mechanism: mech,
				Part:     graph.NewPartition(1<<10, 1),
				LockBase: 1 << 11,
			})
			for i := 0; i < 150; i++ {
				eng.Spawn(w.op, (ctx.GlobalID()+i*i)%29, uint64(1+i%3))
			}
			eng.Drain()
		})
		state := make([]uint64, 29)
		for i := range state {
			state[i] = m.Mem(0)[i]
		}
		if ref == nil {
			ref = state
			continue
		}
		for i := range state {
			if state[i] != ref[i] {
				t.Fatalf("%v: word %d = %d, HTM reference has %d", mech, i, state[i], ref[i])
			}
		}
	}
}
