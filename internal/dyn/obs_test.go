package dyn

import (
	"bytes"
	"strings"
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/obs"
)

// TestFreezeAndApplyHistograms: each Apply leaves a batch-latency sample,
// each cache-missing freeze leaves a sample on the path it took.
func TestFreezeAndApplyHistograms(t *testing.T) {
	g := NewEmpty(16)
	if _, err := g.Apply([]Mutation{AddEdge(0, 1), AddEdge(1, 2)}, TxConfig{}); err != nil {
		t.Fatal(err)
	}
	if got := g.histApply.Count(); got != 1 {
		t.Fatalf("apply histogram samples = %d, want 1", got)
	}
	g.Freeze()
	if _, err := g.Apply([]Mutation{AddEdge(2, 3)}, TxConfig{}); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	fs := g.FreezeStats()
	if got := g.mat.histInc.Count(); got != fs.Incremental {
		t.Errorf("incremental histogram samples = %d, want %d (FreezeStats.Incremental)", got, fs.Incremental)
	}
	if got := g.mat.histFull.Count(); got != fs.FullRebuilds {
		t.Errorf("full-rebuild histogram samples = %d, want %d (FreezeStats.FullRebuilds)", got, fs.FullRebuilds)
	}
	if fs.Incremental+fs.FullRebuilds == 0 {
		t.Error("no freeze path recorded at all")
	}
}

// TestPerMechStats: batches attribute their outcomes to the mechanism
// they ran under.
func TestPerMechStats(t *testing.T) {
	g := NewEmpty(8)
	if _, err := g.Apply([]Mutation{AddEdge(0, 1)}, TxConfig{Mechanism: aam.MechLock}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Apply([]Mutation{AddEdge(1, 2)}, TxConfig{}); err != nil { // default HTM
		t.Fatal(err)
	}
	c := g.Stats()
	if c.PerMech[aam.MechLock].Batches != 1 {
		t.Errorf("lock batches = %d, want 1", c.PerMech[aam.MechLock].Batches)
	}
	if c.PerMech[aam.MechHTM].Batches != 1 {
		t.Errorf("htm batches = %d, want 1", c.PerMech[aam.MechHTM].Batches)
	}
}

// TestRegisterMetrics: the bridge exposes the dyn series and they render.
func TestRegisterMetrics(t *testing.T) {
	g := NewEmpty(8)
	if _, err := g.Apply([]Mutation{AddEdge(0, 1)}, TxConfig{}); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	reg := obs.NewRegistry()
	g.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"aam_dyn_batches_total 1",
		`aam_dyn_tx_aborts_total{reason="conflict"}`,
		`aam_dyn_mech_batches_total{mech="htm"} 1`,
		`aam_dyn_freeze_latency_ns_count{kind="full"}`,
		"aam_dyn_mutation_batch_latency_ns_count 1",
		"aam_dyn_epoch 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
