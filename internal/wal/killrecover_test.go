package wal

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"aamgo/internal/dyn"
	"aamgo/internal/graph"
)

// Kill-and-recover harness: the parent re-execs this test binary as a
// serving child (gated by killEnv), the child applies the deterministic
// stream under -durability batch and prints "ACK <epoch>" only after each
// Apply returns — i.e. after the group fsync — and the parent SIGKILLs it
// mid-write-storm. Recovery must then reproduce a graph bit-identical to
// the mutation-journal oracle for every acknowledged batch.

const (
	killEnv      = "AAM_WAL_KILLRECOVER_DIR"
	killPerBatch = 12
	killMaxBatch = 100000
)

func killBase() (*dyn.Graph, error) {
	return dyn.New(graph.Community(512, 16, 4, 0.05, 11))
}

func killBatch(i, n int) []dyn.Mutation { return testBatch(i, n, killPerBatch) }

func killOpts(dir string) Options {
	return Options{
		Dir:             dir,
		Mode:            ModeBatch,
		GroupWindow:     time.Millisecond,
		CheckpointEvery: 25, // exercise snapshot+tail recovery under fire
	}
}

// TestKillRecoverChild is the helper process; it is skipped unless the
// parent set killEnv.
func TestKillRecoverChild(t *testing.T) {
	dir := os.Getenv(killEnv)
	if dir == "" {
		t.Skip("helper process for TestKillRecover")
	}
	g, _, err := Open(killOpts(dir), killBase)
	if err != nil {
		fmt.Printf("CHILDERR open: %v\n", err)
		os.Exit(1)
	}
	n := g.N()
	out := bufio.NewWriter(os.Stdout)
	for i := 1; i <= killMaxBatch; i++ {
		if _, err := g.Apply(killBatch(i, n), testTx); err != nil {
			fmt.Printf("CHILDERR apply %d: %v\n", i, err)
			os.Exit(1)
		}
		// The ack line must reach the parent before the next batch: an
		// acked epoch is durable, so the parent may hold us to it.
		fmt.Fprintf(out, "ACK %d\n", i)
		out.Flush()
	}
}

func TestKillRecover(t *testing.T) {
	const killAfter = 30
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run", "^TestKillRecoverChild$", "-test.v")
	cmd.Env = append(os.Environ(), killEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Read acks; SIGKILL mid-storm once enough batches are durable. Keep
	// draining afterwards — acks already in the pipe count.
	lastAck := 0
	killed := false
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "CHILDERR") {
			t.Fatalf("child failed: %s", line)
		}
		if !strings.HasPrefix(line, "ACK ") {
			continue
		}
		epoch, err := strconv.Atoi(strings.TrimPrefix(line, "ACK "))
		if err != nil {
			t.Fatalf("bad ack line %q", line)
		}
		lastAck = epoch
		if !killed && lastAck >= killAfter {
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			killed = true
		}
	}
	cmd.Wait() // exits with the kill signal; the acks are the contract
	if !killed {
		t.Fatalf("child finished (last ack %d) before the kill fired", lastAck)
	}
	if lastAck < killAfter {
		t.Fatalf("only %d acks before EOF", lastAck)
	}

	// Recover in-process and hold the log to every acknowledged batch.
	g, l, err := Open(killOpts(dir), killBase)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer l.Close()
	recovered := int(g.Epoch())
	if recovered < lastAck {
		t.Fatalf("lost acknowledged batches: recovered epoch %d < last ack %d", recovered, lastAck)
	}

	// The mutation-journal oracle: replay the same deterministic stream
	// on a fresh base up to the recovered epoch.
	og, err := killBase()
	if err != nil {
		t.Fatal(err)
	}
	n := og.N()
	for i := 1; i <= recovered; i++ {
		if _, err := og.Replay(killBatch(i, n)); err != nil {
			t.Fatalf("oracle batch %d: %v", i, err)
		}
	}
	requireEqualGraphs(t, og, g)
	t.Logf("killed after ack %d, recovered epoch %d (replayed %d, snapshot %d, truncated %d records)",
		lastAck, recovered, l.Recovery().ReplayedBatches, l.Recovery().SnapshotEpoch, l.Recovery().TruncatedRecords)
}
