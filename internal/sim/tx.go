package sim

import (
	"errors"
	"fmt"

	"aamgo/internal/exec"
	"aamgo/internal/htm"
	"aamgo/internal/stats"
	"aamgo/internal/vtime"
)

// txRuntime is the per-(thread, profile) reusable transaction machinery.
// serialSet has capacity limits disabled: the fallback path is
// non-speculative, so footprints are unbounded there.
type txRuntime struct {
	set       *htm.TxSet
	serialSet *htm.TxSet
}

// sentinel panics used to unwind a transaction body.
type capacityAbort struct{ at vtime.Time }
type conflictAbort struct{ at vtime.Time }
type userAbort struct{}

// simTx implements exec.Tx for speculative attempts.
type simTx struct {
	t     *thread
	set   *htm.TxSet
	prof  *exec.HTMProfile
	start vtime.Time
	clock vtime.Time
	// snapSeq is the global apply-sequence value at the body's snapshot
	// point. The body executes as one scheduler slice, so every read
	// observes state as of snapSeq; validation aborts iff a read word
	// was overwritten later (a hardware read-set invalidation).
	snapSeq uint64
	// smt is true when SMT siblings share the transactional cache; each
	// access then risks a sibling-induced speculative eviction.
	smt bool
	// serialized marks the non-speculative fallback path: it runs
	// exclusively, so conflict and eviction checks do not apply.
	serialized bool
	// roNext hands out synthetic line addresses for ReadROData
	// accounting (far beyond any real node memory).
	roNext int
}

// smtEvict plays the co-resident-thread eviction lottery (Fig. 5a/b).
func (x *simTx) smtEvict() {
	if x.smt && x.prof.SMTCapacityProb > 0 &&
		x.t.rng.Float64() < x.prof.SMTCapacityProb {
		panic(capacityAbort{at: x.clock})
	}
}

func (x *simTx) Read(addr int) uint64 {
	x.t.checkAddr(addr)
	if v, ok := x.set.LookupWrite(addr); ok {
		return v
	}
	nl, ok := x.set.NoteRead(addr)
	x.clock += vtime.Time(nl) * x.prof.PerAccessCost
	if !ok {
		panic(capacityAbort{at: x.clock})
	}
	x.smtEvict()
	return x.t.node.mem[addr]
}

func (x *simTx) Write(addr int, v uint64) {
	x.t.checkAddr(addr)
	nl, ok := x.set.NoteWrite(addr, v)
	x.clock += vtime.Time(nl) * x.prof.PerAccessCost
	if !ok {
		panic(capacityAbort{at: x.clock})
	}
	x.smtEvict()
}

func (x *simTx) ReadRange(addr, n int) {
	if n < 0 || addr < 0 || addr+n > len(x.t.node.mem) {
		panic(fmt.Sprintf("sim: tx ReadRange [%d,%d) out of range", addr, addr+n))
	}
	nl, ok := x.set.NoteReadRange(addr, n)
	x.clock += vtime.Time(nl) * x.prof.PerAccessCost
	if !ok {
		panic(capacityAbort{at: x.clock})
	}
}

// roBase is the synthetic address region used to account read-only data
// footprint (CSR adjacency) in the capacity trackers.
const roBase = 1 << 40

func (x *simTx) ReadROData(n int) {
	if n <= 0 {
		return
	}
	if x.roNext == 0 {
		x.roNext = roBase
	}
	nl, ok := x.set.NoteReadRange(x.roNext, n)
	x.roNext += (n + 7) &^ 7
	x.clock += vtime.Time(nl) * x.prof.PerAccessCost
	if !ok {
		panic(capacityAbort{at: x.clock})
	}
}

func (x *simTx) Abort() { panic(userAbort{}) }

var _ exec.Tx = (*simTx)(nil)

// bodyOutcome classifies how a speculative attempt's body ended.
type bodyOutcome int

const (
	bodyOK bodyOutcome = iota
	bodyCapacity
	bodyConflict
	bodyUser
	bodyErr
)

func runTxBody(x *simTx, body func(exec.Tx) error) (out bodyOutcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			switch a := r.(type) {
			case capacityAbort:
				x.clock = a.at
				out = bodyCapacity
			case conflictAbort:
				x.clock = a.at
				out = bodyConflict
			case userAbort:
				out = bodyUser
			default:
				panic(r)
			}
		}
	}()
	if e := body(x); e != nil {
		return bodyErr, e
	}
	return bodyOK, nil
}

func (t *thread) txRuntimeFor(p *exec.HTMProfile) *txRuntime {
	rt, ok := t.txsets[p]
	if !ok {
		unlimited := *p
		unlimited.WriteGeo.MaxLines = 0
		unlimited.WriteGeo.Sets = 0
		unlimited.ReadGeo.MaxLines = 0
		unlimited.ReadGeo.Sets = 0
		rt = &txRuntime{set: htm.NewTxSet(p), serialSet: htm.NewTxSet(&unlimited)}
		t.txsets[p] = rt
	}
	return rt
}

// Tx executes body as an emulated hardware transaction under profile p.
func (t *thread) Tx(p *exec.HTMProfile, body func(exec.Tx) error) exec.TxResult {
	if t.inTx {
		panic("sim: nested transactions are not supported")
	}
	if p == nil {
		p = t.m.prof.HTMVariant("")
	}
	rt := t.txRuntimeFor(p)
	set := rt.set

	t.inTx = true
	defer func() { t.inTx = false }()

	smt := t.m.prof.Cores > 0 && t.m.cfg.ThreadsPerNode > t.m.prof.Cores

	var res exec.TxResult
	t.st.TxStarted++
	attempt := 0
	for {
		attempt++
		t.st.TxAttempts++
		t.yield()
		set.Reset()
		if p.ArbCost > 0 {
			// Shared-resource implementations funnel every begin through
			// the node's HTM arbitration point (BG/Q L2 controller). The
			// extra yield after the forward jump lets lower-clock threads
			// apply pending commits first, so the attempt's start time
			// stays a consistent observation point for validation.
			start := vtime.Max(t.clock, t.node.htmArb) + p.ArbCost
			t.node.htmArb = start
			t.clock = start
			t.yield()
		}
		x := &simTx{t: t, set: set, prof: p, start: t.clock, clock: t.clock + p.BeginCost,
			snapSeq: t.m.applySeq, smt: smt}

		out, err := runTxBody(x, body)

		switch out {
		case bodyUser, bodyErr:
			// Explicit algorithm-level abort: roll back, do not retry.
			t.clock = x.clock + p.AbortCost
			t.st.Aborts[stats.AbortExplicit]++
			t.st.TxUserFailed++
			res.UserAbort = out == bodyUser
			res.Err = err
			return res

		case bodyOK:
			// Spurious-abort lottery (interrupts etc.).
			if p.OtherAbortProb > 0 && t.rng.Float64() < p.OtherAbortProb {
				res.HWAborts++
				t.st.Aborts[stats.AbortOther]++
				t.clock = x.clock + p.AbortCost
				if !t.retryOrSerialize(p, attempt, stats.AbortOther, body, rt, &res) {
					continue
				}
				return res
			}
			// Commit arbitration at commit time.
			t.clock = x.clock + p.CommitCost
			t.yield()
			if t.validate(p, set, x.snapSeq) {
				t.applyCommit(set)
				t.st.TxCommitted++
				res.Committed = true
				return res
			}
			res.HWAborts++
			t.st.Aborts[stats.AbortConflict]++
			t.clock += p.AbortCost
			if !t.retryOrSerialize(p, attempt, stats.AbortConflict, body, rt, &res) {
				continue
			}
			return res

		case bodyCapacity:
			res.HWAborts++
			t.st.Aborts[stats.AbortCapacity]++
			t.clock = x.clock + p.AbortCost
			if !t.retryOrSerialize(p, attempt, stats.AbortCapacity, body, rt, &res) {
				continue
			}
			return res

		case bodyConflict:
			res.HWAborts++
			t.st.Aborts[stats.AbortConflict]++
			t.clock = x.clock + p.AbortCost
			if !t.retryOrSerialize(p, attempt, stats.AbortConflict, body, rt, &res) {
				continue
			}
			return res
		}
	}
}

// retryOrSerialize applies the profile's post-abort policy. It returns true
// when the transaction has reached a final outcome (serialized), false when
// the caller should re-attempt speculatively.
func (t *thread) retryOrSerialize(p *exec.HTMProfile, attempt int, reason stats.AbortReason, body func(exec.Tx) error, rt *txRuntime, res *exec.TxResult) bool {
	switch htm.NextAction(p, attempt, reason) {
	case htm.ActRetry:
		t.clock += p.RetryDelay
		t.st.Retries++
		return false
	case htm.ActBackoff:
		t.clock += htm.BackoffDelay(p, attempt, t.rng)
		t.st.Retries++
		return false
	default:
		*res = t.serialize(p, body, rt.serialSet)
		return true
	}
}

// validate performs commit-time conflict detection: the transaction
// aborts iff a word it read was overwritten (by another thread, or a
// serialized section under a subscribed fallback lock) after its body's
// snapshot point — a hardware read-set invalidation. The body observed a
// consistent snapshot at snapSeq and its writes linearize at the apply
// point, so an untouched read set makes the transaction serializable.
func (t *thread) validate(p *exec.HTMProfile, set *htm.TxSet, snapSeq uint64) bool {
	self := int32(t.gid)
	n := t.node
	if p.LockSubscription && n.lockSeq > snapSeq {
		// A fallback-serialized section committed during our window;
		// subscribing transactions abort wholesale (the RTM/HLE lemming
		// effect).
		return false
	}
	meta := n.meta
	shift := uint(0)
	if p.LineConflicts {
		meta = n.lineMeta
		shift = 3
	}
	for _, addr := range set.Reads() {
		mt := &meta[addr>>shift]
		if mt.wrSeq > snapSeq && mt.wrBy != self {
			return false
		}
	}
	// Write-write: a concurrent commit to a word (or, under line
	// granularity, a line) in our write set is a WAW conflict (duplicate
	// marks racing on one vertex, §6.1); hardware aborts one of the two.
	for _, w := range set.Writes() {
		mt := &meta[w.Addr>>shift]
		if mt.wrSeq > snapSeq && mt.wrBy != self {
			return false
		}
	}
	return true
}

// applyCommit publishes the write buffer and stamps the written words so
// later validations detect the invalidation.
func (t *thread) applyCommit(set *htm.TxSet) {
	n := t.node
	for _, w := range set.Writes() {
		t.m.applySeq++
		n.mem[w.Addr] = w.Val
		mt := &n.meta[w.Addr]
		mt.wrSeq = t.m.applySeq
		mt.wrBy = int32(t.gid)
		lm := &n.lineMeta[w.Addr>>3]
		lm.wrSeq = t.m.applySeq
		lm.wrBy = int32(t.gid)
	}
}

// serialize runs the region under the node's fallback lock: non-speculative,
// always succeeds (unless the body aborts explicitly), and stamps write
// metadata so overlapping speculative transactions detect the conflict —
// the moral equivalent of an RTM fallback lock that every transaction
// subscribes to.
func (t *thread) serialize(p *exec.HTMProfile, body func(exec.Tx) error, set *htm.TxSet) exec.TxResult {
	t.yield()
	n := t.node
	// Serialized sections never validate, so the body must observe a
	// consistent snapshot: after the forward jump to the lock handoff
	// point, yield until no lower-clock thread can still commit before
	// our start (and re-queue if another serializer slipped ahead).
	start := vtime.Max(t.clock, n.lockBusy) + p.SerializeCost
	for {
		t.clock = start
		t.yield()
		if n.lockBusy <= start {
			break
		}
		start = vtime.Max(t.clock, n.lockBusy)
	}
	set.Reset()
	x := &simTx{t: t, set: set, prof: p, start: start, clock: start, serialized: true}

	out, err := runSerializedBody(x, body)

	end := x.clock
	n.lockBusy = end
	t.clock = end
	var res exec.TxResult
	res.Serialized = true
	t.st.TxSerialized++
	switch out {
	case bodyUser, bodyErr:
		t.st.Aborts[stats.AbortExplicit]++
		t.st.TxUserFailed++
		res.UserAbort = out == bodyUser
		res.Err = err
		return res
	default:
		t.applyCommit(set)
		n.lockSeq = t.m.applySeq
		res.Committed = true
		return res
	}
}

// runSerializedBody executes the body with capacity limits disabled (the
// fallback path is non-speculative); explicit aborts still unwind.
func runSerializedBody(x *simTx, body func(exec.Tx) error) (out bodyOutcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case capacityAbort, conflictAbort:
				// Neither capacity nor conflicts can abort the fallback
				// path (it is non-speculative and runs exclusively);
				// reaching here indicates a modeling bug — surface it.
				err = errSerializedOverflow
				out = bodyErr
			case userAbort:
				out = bodyUser
			default:
				panic(r)
			}
		}
	}()
	if e := body(x); e != nil {
		return bodyErr, e
	}
	return bodyOK, nil
}

var errSerializedOverflow = errors.New("sim: speculative footprint overflow while serialized")
