// Package sim implements the exec.Machine interface as a deterministic
// discrete-event simulator. N×T simulated threads run real algorithm code
// as coroutines; a central scheduler always resumes the thread with the
// smallest virtual clock, so all arbitration points (atomics, transaction
// commits, sends, barriers) execute in nondecreasing virtual-time order and
// runs are bit-reproducible for a fixed seed.
//
// The memory system serializes atomics per word (exclusive-line transfer),
// which makes contention emerge mechanically from the workload; the HTM
// emulation (tx.go) detects conflicts by interval overlap on word-level
// access metadata and models capacity via cache-geometry trackers. The
// network delivers active messages after an α+β·size latency.
//
// This is the substitution for the paper's Haswell TSX and Blue Gene/Q
// hardware (see DESIGN.md §2): algorithms and their memory footprints are
// real, only latencies are modeled.
package sim

import (
	"container/heap"
	"fmt"
	"math/bits"
	"strings"

	"aamgo/internal/exec"
	"aamgo/internal/stats"
	"aamgo/internal/vtime"
)

// wordMeta is the per-word conflict metadata: the global apply-sequence
// stamp and writer of the last committed write. A transaction aborts iff a
// word it read was overwritten (higher wrSeq) after its body's snapshot
// point — exactly a hardware read-set invalidation.
type wordMeta struct {
	wrSeq uint64
	wrBy  int32
}

// message is one in-flight active message.
type message struct {
	deliver vtime.Time
	seq     uint64
	handler int
	src     int
	payload []uint64
}

type msgHeap []message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].deliver != h[j].deliver {
		return h[i].deliver < h[j].deliver
	}
	return h[i].seq < h[j].seq
}
func (h msgHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)    { *h = append(*h, x.(message)) }
func (h *msgHeap) Pop() any      { old := *h; n := len(old); m := old[n-1]; *h = old[:n-1]; return m }
func (h msgHeap) peek() *message { return &h[0] }

// node is one simulated compute node.
type node struct {
	id   int
	mem  []uint64
	meta []wordMeta
	// lineBusy serializes exclusive cache-line ownership for atomics and
	// stores (8 words per 64-byte line): contended read-modify-writes to
	// one line transfer it back and forth, which is the fine-grained
	// synchronization cost the paper's AAM coarsening removes.
	lineBusy []vtime.Time
	// lineMeta mirrors wordMeta at cache-line granularity for HTM
	// profiles with line-granular conflict detection (Intel TSX).
	lineMeta []wordMeta
	inbox    msgHeap
	waiters  []*thread // threads blocked in WaitPoll

	// Fallback serialization lock for HTM (one per node, as with a
	// global elision lock). lockBusy orders serialized sections; lockSeq
	// is the apply-sequence stamp of the last serialized section, which
	// lock-subscribing transactions (RTM/HLE) must not overlap.
	lockBusy vtime.Time
	lockSeq  uint64

	// htmArb orders transaction begins through the node's shared HTM
	// resource (profiles with ArbCost > 0).
	htmArb vtime.Time
}

type threadState int

const (
	stReady threadState = iota
	stRunning
	stBarrier
	stInbox
	stDone
)

// readyHeap orders runnable threads by (clock, id).
type readyHeap []*thread

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].gid < h[j].gid
}
func (h readyHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *readyHeap) Push(x any) {
	t := x.(*thread)
	t.heapIdx = len(*h)
	*h = append(*h, t)
}
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	t.heapIdx = -1
	return t
}

// Machine is the simulator instance. It is single-use: construct with New,
// call Run once.
type Machine struct {
	cfg   exec.Config
	prof  *exec.MachineProfile
	nodes []*node
	thr   []*thread

	ready   readyHeap
	toSched chan struct{}

	// Collective state.
	colWaiting []*thread
	colSum     uint64
	colMax     uint64
	colResult  uint64

	msgSeq   uint64
	applySeq uint64 // global memory-apply sequence (conflict snapshots)
	ran      bool
	nodeBufs map[int][]uint64 // reserved; see am package for coalescing
}

// New constructs a simulator machine from cfg.
func New(cfg exec.Config) *Machine {
	cfg.Validate()
	m := &Machine{
		cfg:     cfg,
		prof:    cfg.Profile,
		toSched: make(chan struct{}),
	}
	m.nodes = make([]*node, cfg.Nodes)
	for i := range m.nodes {
		m.nodes[i] = &node{
			id:       i,
			mem:      make([]uint64, cfg.MemWords),
			meta:     make([]wordMeta, cfg.MemWords),
			lineBusy: make([]vtime.Time, cfg.MemWords/8+1),
			lineMeta: make([]wordMeta, cfg.MemWords/8+1),
		}
	}
	total := cfg.Nodes * cfg.ThreadsPerNode
	m.thr = make([]*thread, total)
	for g := 0; g < total; g++ {
		nid := g / cfg.ThreadsPerNode
		m.thr[g] = newThread(m, g, nid, g%cfg.ThreadsPerNode)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() exec.Config { return m.cfg }

// Node memory access for test setup/inspection between runs is provided by
// Mem; it must not be used while Run is in progress.
func (m *Machine) Mem(nodeID int) []uint64 { return m.nodes[nodeID].mem }

// Run executes body once per thread and simulates to quiescence.
func (m *Machine) Run(body func(ctx exec.Context)) exec.Result {
	if m.ran {
		panic("sim: Machine.Run called twice (machines are single-use)")
	}
	m.ran = true
	for _, t := range m.thr {
		t := t
		go func() {
			<-t.resume
			defer func() {
				t.state = stDone
				m.toSched <- struct{}{}
			}()
			body(t)
		}()
		m.readyPush(t)
	}
	m.schedule()

	res := exec.Result{PerThread: make([]stats.Thread, len(m.thr))}
	for i, t := range m.thr {
		res.PerThread[i] = t.st
		if t.clock > res.Elapsed {
			res.Elapsed = t.clock
		}
	}
	res.Stats = stats.Merge(res.PerThread)
	return res
}

func (m *Machine) readyPush(t *thread) {
	t.state = stReady
	heap.Push(&m.ready, t)
}

// schedule is the central DES loop: resume min-clock ready thread, wait for
// it to yield back, repeat; wake inbox waiters when nothing is runnable.
func (m *Machine) schedule() {
	for {
		if m.ready.Len() == 0 {
			if m.allDone() {
				return
			}
			if !m.wakeEarliestWaiter() {
				panic("sim: deadlock\n" + m.dump())
			}
		}
		t := heap.Pop(&m.ready).(*thread)
		t.state = stRunning
		t.resume <- struct{}{}
		<-m.toSched
	}
}

func (m *Machine) allDone() bool {
	for _, t := range m.thr {
		if t.state != stDone {
			return false
		}
	}
	return true
}

// wakeEarliestWaiter unblocks the WaitPoll-blocked thread whose node has
// the earliest pending delivery. Returns false when no progress is
// possible.
func (m *Machine) wakeEarliestWaiter() bool {
	var best *thread
	var bestAt vtime.Time
	for _, n := range m.nodes {
		if len(n.waiters) == 0 || n.inbox.Len() == 0 {
			continue
		}
		at := n.inbox.peek().deliver
		// Wake the waiter with the smallest clock.
		w := n.waiters[0]
		for _, c := range n.waiters[1:] {
			if c.clock < w.clock {
				w = c
			}
		}
		wakeAt := vtime.Max(w.clock, at)
		if best == nil || wakeAt < bestAt {
			best, bestAt = w, wakeAt
		}
	}
	if best == nil {
		return false
	}
	m.unblockWaiter(best, bestAt)
	return true
}

func (m *Machine) unblockWaiter(t *thread, at vtime.Time) {
	n := t.node
	for i, w := range n.waiters {
		if w == t {
			n.waiters = append(n.waiters[:i], n.waiters[i+1:]...)
			break
		}
	}
	t.clock = vtime.Max(t.clock, at)
	m.readyPush(t)
}

// barrierLatency models a tree barrier/allreduce across all threads.
func (m *Machine) barrierLatency() vtime.Time {
	n := len(m.thr)
	lg := bits.Len(uint(n - 1))
	return m.prof.BarrierBase + vtime.Time(lg)*m.prof.BarrierStep
}

func (m *Machine) dump() string {
	var b strings.Builder
	for _, t := range m.thr {
		fmt.Fprintf(&b, "  thread %d (node %d): state=%d clock=%v\n", t.gid, t.nid, t.state, t.clock)
	}
	for _, n := range m.nodes {
		fmt.Fprintf(&b, "  node %d: inbox=%d waiters=%d\n", n.id, n.inbox.Len(), len(n.waiters))
	}
	return b.String()
}

var _ exec.Machine = (*Machine)(nil)
