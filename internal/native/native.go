// Package native implements the exec.Machine interface with real
// concurrency: one goroutine per thread, sync/atomic word operations, and a
// TL2-style software transactional memory standing in for HTM (stm.go).
//
// The backend exists for two reasons. First, it makes the library genuinely
// usable for parallel graph processing on commodity multicore hosts — the
// paper's AAM runtime, algorithms and examples all run unchanged on it.
// Second, it cross-checks the simulator: every algorithm must produce
// identical results on both backends (and under -race on this one).
//
// Timing facilities degrade gracefully: Now() reports wall time since Run
// started, Compute() is a no-op, and the cost model in the machine profile
// is ignored.
package native

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aamgo/internal/exec"
	"aamgo/internal/stats"
	"aamgo/internal/vtime"
)

// Machine is the native-concurrency backend. Like sim.Machine it is
// single-use.
type Machine struct {
	cfg   exec.Config
	nodes []*node
	start time.Time
	ran   bool

	barrier *barrier
	arSlots [2]uint64 // alternating allreduce accumulators
	arMax   [2]uint64
	arGen   uint32
}

type node struct {
	id  int
	mem []uint64
	stm *stmNode

	inboxMu   sync.Mutex
	inboxCond *sync.Cond
	inbox     []nmsg
}

type nmsg struct {
	handler int
	src     int
	payload []uint64
}

// New constructs a native machine from cfg.
func New(cfg exec.Config) *Machine {
	cfg.Validate()
	m := &Machine{cfg: cfg}
	m.nodes = make([]*node, cfg.Nodes)
	for i := range m.nodes {
		n := &node{id: i, mem: make([]uint64, cfg.MemWords)}
		n.inboxCond = sync.NewCond(&n.inboxMu)
		n.stm = newSTMNode(n.mem)
		m.nodes[i] = n
	}
	m.barrier = newBarrier(cfg.Nodes * cfg.ThreadsPerNode)
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() exec.Config { return m.cfg }

// Mem returns the memory of nodeID for inspection after Run completes.
func (m *Machine) Mem(nodeID int) []uint64 { return m.nodes[nodeID].mem }

// Run executes body once per thread and waits for completion.
func (m *Machine) Run(body func(ctx exec.Context)) exec.Result {
	if m.ran {
		panic("native: Machine.Run called twice (machines are single-use)")
	}
	m.ran = true
	total := m.cfg.Nodes * m.cfg.ThreadsPerNode
	ctxs := make([]*nthread, total)
	for g := 0; g < total; g++ {
		nid := g / m.cfg.ThreadsPerNode
		ctxs[g] = &nthread{
			m:    m,
			node: m.nodes[nid],
			gid:  g,
			nid:  nid,
			lid:  g % m.cfg.ThreadsPerNode,
			rng:  rand.New(rand.NewSource(m.cfg.Seed*1_000_003 + int64(g)*7919 + 17)),
		}
	}
	m.start = time.Now()
	var wg sync.WaitGroup
	wg.Add(total)
	for _, c := range ctxs {
		c := c
		go func() {
			defer wg.Done()
			body(c)
		}()
	}
	wg.Wait()

	res := exec.Result{
		Elapsed:   vtime.Time(time.Since(m.start).Nanoseconds()),
		PerThread: make([]stats.Thread, total),
	}
	for i, c := range ctxs {
		res.PerThread[i] = c.st
	}
	res.Stats = stats.Merge(res.PerThread)
	return res
}

// nthread implements exec.Context over real concurrency.
type nthread struct {
	m    *Machine
	node *node
	gid  int
	nid  int
	lid  int
	rng  *rand.Rand
	st   stats.Thread
	inTx bool
}

func (t *nthread) GlobalID() int       { return t.gid }
func (t *nthread) NodeID() int         { return t.nid }
func (t *nthread) LocalID() int        { return t.lid }
func (t *nthread) Nodes() int          { return t.m.cfg.Nodes }
func (t *nthread) ThreadsPerNode() int { return t.m.cfg.ThreadsPerNode }

func (t *nthread) Now() vtime.Time {
	return vtime.Time(time.Since(t.m.start).Nanoseconds())
}

func (t *nthread) Compute(d vtime.Time) {}

func (t *nthread) checkAddr(addr int) {
	if addr < 0 || addr >= len(t.node.mem) {
		panic(fmt.Sprintf("native: node %d address %d out of range [0,%d)", t.nid, addr, len(t.node.mem)))
	}
}

func (t *nthread) MemSize() int { return len(t.node.mem) }

func (t *nthread) Load(addr int) uint64 {
	t.checkAddr(addr)
	t.st.Loads++
	return atomic.LoadUint64(&t.node.mem[addr])
}

func (t *nthread) Store(addr int, v uint64) {
	t.checkAddr(addr)
	t.st.Stores++
	atomic.StoreUint64(&t.node.mem[addr], v)
}

func (t *nthread) CAS(addr int, old, new uint64) bool {
	t.checkAddr(addr)
	t.st.AtomicOps++
	ok := atomic.CompareAndSwapUint64(&t.node.mem[addr], old, new)
	if !ok {
		t.st.CASFail++
	}
	return ok
}

func (t *nthread) FetchAdd(addr int, delta uint64) uint64 {
	t.checkAddr(addr)
	t.st.AtomicOps++
	return atomic.AddUint64(&t.node.mem[addr], delta) - delta
}

func (t *nthread) Lock(addr int) {
	t.checkAddr(addr)
	for !atomic.CompareAndSwapUint64(&t.node.mem[addr], 0, 1) {
		runtime.Gosched()
	}
	t.st.LockAcqs++
}

func (t *nthread) Unlock(addr int) {
	t.checkAddr(addr)
	atomic.StoreUint64(&t.node.mem[addr], 0)
}

// --- messaging ---

func (t *nthread) Send(dstNode int, handler int, payload []uint64) {
	if dstNode < 0 || dstNode >= len(t.m.nodes) {
		panic(fmt.Sprintf("native: send to invalid node %d", dstNode))
	}
	if handler < 0 || handler >= len(t.m.cfg.Handlers) {
		panic(fmt.Sprintf("native: send with unregistered handler %d", handler))
	}
	body := make([]uint64, len(payload))
	copy(body, payload)
	dst := t.m.nodes[dstNode]
	dst.inboxMu.Lock()
	dst.inbox = append(dst.inbox, nmsg{handler: handler, src: t.nid, payload: body})
	dst.inboxMu.Unlock()
	dst.inboxCond.Broadcast()
	t.st.MsgsSent++
	t.st.MsgWords += uint64(len(payload))
}

func (t *nthread) drain() []nmsg {
	n := t.node
	n.inboxMu.Lock()
	msgs := n.inbox
	n.inbox = nil
	n.inboxMu.Unlock()
	return msgs
}

func (t *nthread) Poll() int {
	msgs := t.drain()
	for _, msg := range msgs {
		t.st.HandlersRun++
		t.m.cfg.Handlers[msg.handler](t, msg.src, msg.payload)
	}
	return len(msgs)
}

func (t *nthread) WaitPoll() int {
	for {
		if n := t.Poll(); n > 0 {
			return n
		}
		t.node.inboxMu.Lock()
		for len(t.node.inbox) == 0 {
			t.node.inboxCond.Wait()
		}
		t.node.inboxMu.Unlock()
	}
}

// --- collectives ---

func (t *nthread) Barrier() {
	t.st.Barriers++
	t.m.barrier.await()
}

func (t *nthread) AllReduceSum(v uint64) uint64 {
	g := atomic.LoadUint32(&t.m.arGen) & 1
	atomic.AddUint64(&t.m.arSlots[g], v)
	t.m.barrier.await()
	out := atomic.LoadUint64(&t.m.arSlots[g])
	if t.m.barrier.await() {
		// Exactly one thread resets the used slot and flips generation.
		atomic.StoreUint64(&t.m.arSlots[g], 0)
		atomic.StoreUint64(&t.m.arMax[g], 0)
		atomic.AddUint32(&t.m.arGen, 1)
	}
	t.m.barrier.await()
	return out
}

func (t *nthread) AllReduceMax(v uint64) uint64 {
	g := atomic.LoadUint32(&t.m.arGen) & 1
	for {
		cur := atomic.LoadUint64(&t.m.arMax[g])
		if v <= cur || atomic.CompareAndSwapUint64(&t.m.arMax[g], cur, v) {
			break
		}
	}
	t.m.barrier.await()
	out := atomic.LoadUint64(&t.m.arMax[g])
	if t.m.barrier.await() {
		atomic.StoreUint64(&t.m.arSlots[g], 0)
		atomic.StoreUint64(&t.m.arMax[g], 0)
		atomic.AddUint32(&t.m.arGen, 1)
	}
	t.m.barrier.await()
	return out
}

func (t *nthread) Rand() *rand.Rand              { return t.rng }
func (t *nthread) Stats() *stats.Thread          { return &t.st }
func (t *nthread) Profile() *exec.MachineProfile { return t.m.cfg.Profile }

// barrier is a reusable generation-counting barrier. await returns true for
// exactly one thread per generation (the last arriver).
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() bool {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return true
	}
	for b.gen == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return false
}

var (
	_ exec.Machine = (*Machine)(nil)
	_ exec.Context = (*nthread)(nil)
)
