// Package shard executes AAM graph algorithms across multiple graph
// shards on real goroutines. The vertex set is split by the 1-D block
// distribution of internal/graph.Partition; every shard owns its block's
// vertex state, runs its own worker pool isolated by one of the five
// mechanisms of internal/aam, and communicates with the other shards
// exclusively through active messages: cross-shard operator spawns are
// accumulated in per-destination coalescing buffers and flushed as
// batched May-Fail operator batches into the destination shard's inbox.
//
// The layer generalizes the paper's intra-node activity coalescing (§4.2)
// to inter-shard traffic: batching amortizes the per-message handoff cost
// exactly as Figure 5's C factor amortizes the network α cost, and the
// May-Fail batch semantics (every unit applies independently, failures
// are counted, nothing flows back) keep the protocol one-way and
// deadlock-free. See DESIGN.md §"Sharded execution" for the flush-ordering
// correctness argument.
package shard

import (
	"fmt"
	"runtime"
	"time"

	"aamgo/internal/aam"
)

// FlushPolicy selects when a destination's coalescing buffer is handed to
// the destination shard.
type FlushPolicy int

const (
	// FlushBySize flushes a destination buffer once BatchSize units have
	// accumulated (the default; the analogue of the paper's C factor).
	FlushBySize FlushPolicy = iota
	// FlushEager flushes after every unit: batching disabled, one message
	// per cross-shard operator. The baseline the batch-size sweeps compare
	// against.
	FlushEager
	// FlushByEpoch holds every unit until the epoch barrier (Drain):
	// maximum batching, frontier-latency traded for minimum message count.
	FlushByEpoch
)

// String names the policy.
func (p FlushPolicy) String() string {
	switch p {
	case FlushBySize:
		return "size"
	case FlushEager:
		return "eager"
	case FlushByEpoch:
		return "epoch"
	default:
		return "policy(?)"
	}
}

// PolicyByName resolves the wire names of the flush policies.
func PolicyByName(name string) (FlushPolicy, bool) {
	for _, p := range []FlushPolicy{FlushBySize, FlushEager, FlushByEpoch} {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// PartScheme selects how the vertex set is split into shard-owned ranges.
type PartScheme int

const (
	// PartBlock is the paper's 1-D block distribution (§3.1): equal
	// vertex counts per shard. The default.
	PartBlock PartScheme = iota
	// PartEdge balances outgoing-arc counts instead of vertex counts
	// (prefix-sum boundaries over the degree array, binary-search Owner) —
	// the skew-resistant choice for power-law graphs, where one block can
	// otherwise concentrate most of the work on a single shard.
	PartEdge
)

// String names the scheme.
func (p PartScheme) String() string {
	switch p {
	case PartBlock:
		return "block"
	case PartEdge:
		return "edge"
	default:
		return "part(?)"
	}
}

// PartByName resolves the wire names of the partition schemes.
func PartByName(name string) (PartScheme, bool) {
	for _, p := range []PartScheme{PartBlock, PartEdge} {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// Direction selects the BFS traversal strategy.
type Direction int

const (
	// DirAuto switches between push and pull per level on the
	// frontier-edge heuristic (direction-optimizing BFS). The default.
	DirAuto Direction = iota
	// DirPush always expands the frontier top-down through mark operators
	// (the classic AAM formulation; the pre-optimization behavior).
	DirPush
	// DirPull always scans unvisited vertices bottom-up against the
	// frontier bitmap. Valid on undirected graphs only; directed graphs
	// fall back to push (the CSR has no reverse adjacency).
	DirPull
)

// String names the direction policy.
func (d Direction) String() string {
	switch d {
	case DirAuto:
		return "auto"
	case DirPush:
		return "push"
	case DirPull:
		return "pull"
	default:
		return "dir(?)"
	}
}

// DirectionByName resolves the wire names of the direction policies.
func DirectionByName(name string) (Direction, bool) {
	for _, d := range []Direction{DirAuto, DirPush, DirPull} {
		if d.String() == name {
			return d, true
		}
	}
	return 0, false
}

// Config shapes one sharded execution.
type Config struct {
	// Shards is the number of graph shards (default 1). Shards may exceed
	// the vertex count; surplus shards own empty blocks.
	Shards int
	// Workers is the number of worker goroutines per shard (default 1:
	// the shard is the unit of parallelism and its state is uncontended).
	// Values above 1 add intra-shard parallelism and make the isolation
	// mechanism load-bearing.
	Workers int
	// BatchSize is the coalescing factor: units per cross-shard batch
	// under FlushBySize (default 64).
	BatchSize int
	// Flush selects the flush policy (default FlushBySize).
	Flush FlushPolicy
	// Mechanism isolates local operator application for every shard.
	// The zero value is MechHTM (the paper's flagship mechanism): the
	// emulated optimistic retry-then-serialize path.
	Mechanism aam.Mechanism
	// Mechanisms, when non-nil, overrides Mechanism per shard; its length
	// must equal Shards. Heterogeneous shards are allowed — every
	// mechanism reaches the same final state.
	Mechanisms []aam.Mechanism
	// HTMRetries bounds the emulated-HTM optimistic attempts before the
	// serialized fallback path (default 8, mirroring the simulator's
	// Haswell retry policy).
	HTMRetries int
	// Part selects the vertex distribution: PartBlock (default, equal
	// vertex counts) or PartEdge (equal outgoing-arc counts — the
	// skew-resistant boundaries). Results are identical under both; only
	// the shard load balance and the cross-shard traffic pattern change.
	Part PartScheme
	// Dir selects the BFS traversal strategy (DirAuto, DirPush, DirPull);
	// ignored by the other algorithms.
	Dir Direction

	// CollTimeout bounds how long a rank waits inside one distributed
	// collective (allreduce, barrier) before declaring the peer dead
	// (default 2m). Ignored by the in-process transport.
	CollTimeout time.Duration
	// HeartbeatEvery is the coordinator's probe interval on quiet worker
	// links (default 5s). Ignored by the in-process transport.
	HeartbeatEvery time.Duration
	// Liveness is how long a worker link may stay silent — no frames, no
	// pong — before the coordinator evicts the rank (default 15s; must
	// exceed HeartbeatEvery to allow at least one missed probe).
	Liveness time.Duration
	// JobTimeout bounds one distributed job attempt end to end (default
	// 10m). It is the watchdog for hangs the collective timeout cannot
	// see, e.g. a Drain that never quiesces because frames were lost.
	JobTimeout time.Duration

	// transport, when non-nil, carries cross-shard batches instead of the
	// default in-process inbox delivery. Set by the cluster layer
	// (cluster.go) on every peer process of a distributed run; external
	// callers go through NewCluster / JoinCluster.
	transport Transport
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.BatchSize < 1 {
		c.BatchSize = 64
	}
	if c.HTMRetries < 1 {
		c.HTMRetries = 8
	}
	if c.CollTimeout <= 0 {
		c.CollTimeout = 2 * time.Minute
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 5 * time.Second
	}
	if c.Liveness <= 0 {
		c.Liveness = 15 * time.Second
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	return c
}

func (c Config) validate() error {
	if c.Mechanisms != nil && len(c.Mechanisms) != c.Shards {
		return fmt.Errorf("shard: Mechanisms has %d entries for %d shards", len(c.Mechanisms), c.Shards)
	}
	if c.Shards*c.Workers > 1<<16 {
		return fmt.Errorf("shard: %d×%d workers exceeds the sanity bound", c.Shards, c.Workers)
	}
	if maxProcs := runtime.GOMAXPROCS(0); c.Shards*c.Workers > 64*maxProcs {
		return fmt.Errorf("shard: %d×%d workers over %d procs is degenerate", c.Shards, c.Workers, maxProcs)
	}
	return nil
}

// mechanism returns shard id's isolation mechanism.
func (c Config) mechanism(id int) aam.Mechanism {
	if c.Mechanisms != nil {
		return c.Mechanisms[id]
	}
	return c.Mechanism
}

// Stats aggregates one shard's execution counters. Cross-shard counters
// follow the message direction: Sent counters belong to the spawning
// shard, Recv counters to the owning (applying) shard.
type Stats struct {
	// LocalOps counts operators spawned and applied on the owning shard
	// without messaging; LocalFailed is its May-Fail failure subset.
	LocalOps    uint64
	LocalFailed uint64

	// RemoteUnitsSent / RemoteBatchesSent count coalesced operator units
	// and the flushed batches that carried them.
	RemoteUnitsSent   uint64
	RemoteBatchesSent uint64
	// RemoteUnitsRecv / RemoteBatchesRecv count batch units applied by
	// this shard's workers; RemoteFailed is the May-Fail failure subset.
	RemoteUnitsRecv   uint64
	RemoteBatchesRecv uint64
	RemoteFailed      uint64

	// Isolation counters. Aborts are optimistic conflicts (HTM emulation
	// and OCC validation failures), Retries are atomic CAS retakes and
	// contended lock acquisitions, Serialized counts HTM fallback
	// serializations, Combined counts operators a flat-combining combiner
	// executed on behalf of other workers.
	Aborts     uint64
	Retries    uint64
	Serialized uint64
	Combined   uint64

	// BufferAllocs counts fresh coalescing-buffer allocations (recycle-pool
	// misses). Buffers circulate sender→inbox→pool, so after warm-up the
	// message path allocates nothing and this counter stops moving.
	BufferAllocs uint64

	// WireBatchesSent / WireBytesSent count batches that actually crossed
	// a process boundary (tcp transport only; frame header included in the
	// byte count). Always zero in-process — a subset of the Remote*Sent
	// counters above, which keep counting every cross-shard flush.
	WireBatchesSent uint64
	WireBytesSent   uint64
}

// add accumulates o into s.
func (s *Stats) add(o Stats) {
	s.LocalOps += o.LocalOps
	s.LocalFailed += o.LocalFailed
	s.RemoteUnitsSent += o.RemoteUnitsSent
	s.RemoteBatchesSent += o.RemoteBatchesSent
	s.RemoteUnitsRecv += o.RemoteUnitsRecv
	s.RemoteBatchesRecv += o.RemoteBatchesRecv
	s.RemoteFailed += o.RemoteFailed
	s.Aborts += o.Aborts
	s.Retries += o.Retries
	s.Serialized += o.Serialized
	s.Combined += o.Combined
	s.BufferAllocs += o.BufferAllocs
	s.WireBatchesSent += o.WireBatchesSent
	s.WireBytesSent += o.WireBytesSent
}

// Ops returns the total operator applications this shard performed.
func (s Stats) Ops() uint64 { return s.LocalOps + s.RemoteUnitsRecv }

// Result reports one sharded algorithm execution.
type Result struct {
	// Elapsed is the wall-clock duration of the parallel phase.
	Elapsed time.Duration
	// Epochs counts the Drain barriers (BFS levels, PageRank iterations,
	// CC rounds).
	Epochs int
	// PerShard holds each shard's counters, indexed by shard id.
	PerShard []Stats
}

// Totals sums the per-shard counters.
func (r Result) Totals() Stats {
	var t Stats
	for _, s := range r.PerShard {
		t.add(s)
	}
	return t
}

// AllocsPerEpoch reports message-buffer allocations per Drain barrier —
// the steady-state figure of merit for the coalescing path (warm-up
// populates the recycle pool, after which this tends to zero).
func (r Result) AllocsPerEpoch() float64 {
	if r.Epochs == 0 {
		return 0
	}
	return float64(r.Totals().BufferAllocs) / float64(r.Epochs)
}
