package bench

import (
	"fmt"
	"reflect"

	"aamgo/internal/algo"
	"aamgo/internal/graph"
	"aamgo/internal/shard"
)

func init() {
	register(Experiment{
		ID:    "sharded-irregular",
		Title: "Sharded irregular workloads: delta-stepping SSSP, Borůvka MST, greedy coloring",
		Paper: "The priority-driven and component-merging case studies of §3.3/§5.4 on " +
			"the sharded coalescing executor: SSSP buckets relaxations behind a shared " +
			"bucket-epoch barrier, Borůvka proposes minimum edges as cross-shard " +
			"min-combines, coloring ships one counter decrement per edge. Results are " +
			"verified against the sequential references at every shard count; the " +
			"cross-shard unit counts are deterministic for a fixed seed and scale.",
		Run: runShardedIrregular,
	})
}

func runShardedIrregular(o Options) *Report {
	rep := &Report{}
	scale := o.shift(11, 6)
	g := graph.AttachSymmetricWeights(graph.Kronecker(scale, 8, o.Seed), uint64(o.Seed))
	src := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	arcs := float64(g.NumEdges())

	refDist := algo.SeqSSSP(g, src)
	refWeight := algo.SeqMSTWeight(g)
	refColors, refUsed := algo.GreedyColoring(g)

	t := rep.NewTable("wall time by shard count (workers=1, batch=64)",
		"algo", "shards", "wall-ms", "rounds", "local-ops", "remote-units", "remote-batches")
	type outcome struct {
		res    shard.Result
		rounds int
	}
	type runner struct {
		name string
		run  func(cfg shard.Config) (outcome, error)
	}
	var ssspBuckets int
	runners := []runner{
		{"sssp", func(cfg shard.Config) (outcome, error) {
			res, err := shard.SSSP(g, src, 0, cfg)
			if err != nil {
				return outcome{}, err
			}
			if !reflect.DeepEqual(res.Dists, refDist) {
				return outcome{}, fmt.Errorf("sssp distances diverge from Dijkstra at %d shards", cfg.Shards)
			}
			ssspBuckets = res.Buckets
			return outcome{res.Result, res.Buckets}, nil
		}},
		{"mst", func(cfg shard.Config) (outcome, error) {
			res, err := shard.MST(g, cfg)
			if err != nil {
				return outcome{}, err
			}
			if res.Weight != refWeight {
				return outcome{}, fmt.Errorf("mst weight %d != Kruskal %d at %d shards", res.Weight, refWeight, cfg.Shards)
			}
			return outcome{res.Result, res.Rounds}, nil
		}},
		{"coloring", func(cfg shard.Config) (outcome, error) {
			res, err := shard.Coloring(g, 0, cfg)
			if err != nil {
				return outcome{}, err
			}
			if !reflect.DeepEqual(res.Colors, refColors) || res.Used != refUsed {
				return outcome{}, fmt.Errorf("coloring diverges from greedy reference at %d shards", cfg.Shards)
			}
			return outcome{res.Result, res.Rounds}, nil
		}},
	}

	identical := true
	for _, r := range runners {
		for _, shards := range shardCounts {
			cfg := shard.Config{Shards: shards, BatchSize: 64}
			out, err := r.run(cfg)
			if err != nil {
				identical = false
				rep.Notef("FAILED: %v", err)
				continue
			}
			// Best-of-5 wall time (scheduling noise is one-sided).
			for rep2 := 0; rep2 < 4; rep2++ {
				if again, err := r.run(cfg); err == nil && again.res.Elapsed < out.res.Elapsed {
					out.res.Elapsed = again.res.Elapsed
				}
			}
			tot := out.res.Totals()
			t.AddRow(r.name, itoa(shards),
				fmt.Sprintf("%.2f", float64(out.res.Elapsed.Nanoseconds())/1e6),
				itoa(out.rounds),
				utoa(tot.LocalOps), utoa(tot.RemoteUnitsSent), utoa(tot.RemoteBatchesSent))
			if shards == 4 {
				rep.Metricf(r.name+".remote_units.s4", float64(tot.RemoteUnitsSent))
				rep.Metricf(r.name+".remote_batches.s4", float64(tot.RemoteBatchesSent))
				rep.Metricf(r.name+".tput.keps.s4", arcs/out.res.Elapsed.Seconds()/1e3)
				if r.name == "sssp" {
					// Distinct delta-stepping buckets processed by the flat
					// bucket rings: deterministic for a fixed seed/scale, so
					// a drift means the bucket structure changed behavior.
					rep.Metricf("sssp.buckets.s4", float64(ssspBuckets))
				}
			}
		}
	}
	rep.Checkf(identical, "irregular results identical",
		"SSSP = Dijkstra, MST weight = Kruskal, coloring = sequential greedy across shards %v", shardCounts)

	// Edge-balanced partition: identical results, gated unit counts.
	partsOK := true
	for _, r := range runners {
		out, err := r.run(shard.Config{Shards: 4, BatchSize: 64, Part: shard.PartEdge})
		if err != nil {
			partsOK = false
			rep.Notef("FAILED: %s under edge partition: %v", r.name, err)
			continue
		}
		rep.Metricf(r.name+".remote_units.edge.s4", float64(out.res.Totals().RemoteUnitsSent))
	}
	rep.Checkf(partsOK, "partition schemes equivalent",
		"SSSP, MST and coloring results identical under block and edge-balanced partitions")

	// Coalescing sweep for SSSP: the bucket-epoch barrier does not change
	// the relaxation unit count, only how it is batched.
	bt := rep.NewTable("SSSP coalescing sweep (4 shards)",
		"policy", "batch", "wall-ms", "remote-units", "remote-batches", "units/batch")
	type sweepPoint struct {
		policy shard.FlushPolicy
		batch  int
	}
	sweep := []sweepPoint{
		{shard.FlushEager, 1},
		{shard.FlushBySize, 64},
		{shard.FlushByEpoch, 0},
	}
	var units, batches []uint64
	for _, p := range sweep {
		cfg := shard.Config{Shards: 4, BatchSize: p.batch, Flush: p.policy}
		res, err := shard.SSSP(g, src, 0, cfg)
		if err != nil || !reflect.DeepEqual(res.Dists, refDist) {
			rep.Checkf(false, "sweep runs", "policy %v: err=%v", p.policy, err)
			return rep
		}
		tot := res.Totals()
		perBatch := 0.0
		if tot.RemoteBatchesSent > 0 {
			perBatch = float64(tot.RemoteUnitsSent) / float64(tot.RemoteBatchesSent)
		}
		label := p.policy.String()
		if p.policy == shard.FlushBySize {
			label = fmt.Sprintf("size=%d", p.batch)
		}
		bt.AddRow(label, itoa(p.batch),
			fmt.Sprintf("%.2f", float64(res.Elapsed.Nanoseconds())/1e6),
			utoa(tot.RemoteUnitsSent), utoa(tot.RemoteBatchesSent),
			fmt.Sprintf("%.1f", perBatch))
		units = append(units, tot.RemoteUnitsSent)
		batches = append(batches, tot.RemoteBatchesSent)
	}
	unitsInvariant, batchesMonotone := true, true
	for i := 1; i < len(sweep); i++ {
		if units[i] != units[0] {
			unitsInvariant = false
		}
		if batches[i] > batches[i-1] {
			batchesMonotone = false
		}
	}
	rep.Checkf(unitsInvariant, "units invariant under batching",
		"every policy relaxes the same %d cross-shard units", units[0])
	rep.Checkf(batchesMonotone, "batching collapses messages",
		"batch count falls from %d (eager) to %d (epoch)", batches[0], batches[len(batches)-1])
	if batches[len(batches)-1] > 0 {
		rep.Metricf("sssp.batch_reduction", float64(batches[0])/float64(batches[len(batches)-1]))
	}

	rep.Notef("graph: Kronecker scale %d (%d vertices, %d arcs), src=%d, symmetric distinct weights",
		scale, g.N, g.NumEdges(), src)
	rep.Notef("remote_units/remote_batches/batch_reduction are deterministic for a fixed seed and scale " +
		"(workers=1: per-shard execution is sequential, bucket lists are sorted, priorities are hashes); " +
		"tput.keps = stored arcs / best-of-5 wall-second / 1e3 is machine-dependent and the committed " +
		"baseline holds conservative floors for it")
	return rep
}
