package aam_test

import (
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/native"
)

// Cross-backend checks: the native backend runs the same engine on real
// goroutines with sync/atomic words and a TL2-style STM, so these tests
// exercise the mechanisms under genuine concurrency (run them with -race
// to check the host-side structures too).

func nativeMachine(w *countingWorkload, nodes, threads int) exec.Machine {
	prof := exec.HaswellC()
	return native.New(exec.Config{
		Nodes: nodes, ThreadsPerNode: threads, MemWords: 1 << 12,
		Profile: &prof, Handlers: w.rt.Handlers(nil), Seed: 9,
	})
}

func TestNativeAllMechanismsSumCorrectly(t *testing.T) {
	for _, mech := range []aam.Mechanism{
		aam.MechHTM, aam.MechAtomic, aam.MechLock,
		aam.MechOptimistic, aam.MechFlatCombining,
	} {
		w := newCounting()
		m := nativeMachine(w, 1, 8)
		m.Run(func(ctx exec.Context) {
			eng := aam.NewEngine(w.rt, ctx, aam.Config{
				M: 4, Mechanism: mech,
				Part:     graph.NewPartition(1<<10, 1),
				LockBase: 1 << 11,
			})
			for i := 0; i < 250; i++ {
				eng.Spawn(w.op, (ctx.GlobalID()*11+i)%31, 1)
			}
			eng.Drain()
		})
		sum := uint64(0)
		for i := 0; i < 31; i++ {
			sum += m.Mem(0)[i]
		}
		if sum != 2000 {
			t.Fatalf("%v on native: applied sum = %d, want 2000", mech, sum)
		}
	}
}

func TestNativeOCCHighContention(t *testing.T) {
	// All goroutines hammer one word through OCC: every increment must
	// survive real interleavings.
	w := newCounting()
	m := nativeMachine(w, 1, 8)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 1, Mechanism: aam.MechOptimistic,
			Part:     graph.NewPartition(1<<10, 1),
			LockBase: 1 << 11,
		})
		for i := 0; i < 300; i++ {
			eng.Spawn(w.op, 0, 1)
		}
		eng.Drain()
	})
	if got := m.Mem(0)[0]; got != 2400 {
		t.Fatalf("contended OCC counter = %d, want 2400", got)
	}
	if res.Stats.TxCommitted != 2400 {
		t.Fatalf("commits = %d, want 2400", res.Stats.TxCommitted)
	}
}

func TestNativeFlatCombiningHighContention(t *testing.T) {
	w := newCounting()
	m := nativeMachine(w, 1, 8)
	m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 2, Mechanism: aam.MechFlatCombining,
			Part:     graph.NewPartition(1<<10, 1),
			LockBase: 1 << 11,
		})
		for i := 0; i < 300; i++ {
			eng.Spawn(w.op, i%7, 1)
		}
		eng.Drain()
	})
	sum := uint64(0)
	for i := 0; i < 7; i++ {
		sum += m.Mem(0)[i]
	}
	if sum != 2400 {
		t.Fatalf("flat-combined sum = %d, want 2400", sum)
	}
}

func TestNativeLoweringMatchesSim(t *testing.T) {
	// The lowering pass must behave identically on the native backend:
	// same final state, nearly everything lowered.
	w := newCounting()
	m := nativeMachine(w, 1, 4)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 1, Mechanism: aam.MechHTM, LowerSingle: true,
			Part: graph.NewPartition(1<<10, 1),
		})
		for i := 0; i < 200; i++ {
			eng.Spawn(w.op, (ctx.GlobalID()+i)%53, 1)
		}
		eng.Drain()
	})
	sum := uint64(0)
	for i := 0; i < 53; i++ {
		sum += m.Mem(0)[i]
	}
	if sum != 800 {
		t.Fatalf("lowered sum = %d, want 800", sum)
	}
	if res.Stats.LoweredOps == 0 {
		t.Fatal("nothing lowered on the native backend")
	}
}

func TestNativeRemoteSpawnsWithCoalescing(t *testing.T) {
	w := newCounting()
	m := nativeMachine(w, 4, 2)
	part := graph.NewPartition(1<<10, 4)
	m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 4, C: 16, Mechanism: aam.MechHTM, Part: part,
		})
		if ctx.GlobalID() == 0 {
			for v := 0; v < 1<<10; v++ {
				eng.Spawn(w.op, v, 1)
			}
		}
		eng.Drain()
	})
	for n := 0; n < 4; n++ {
		for lv := 0; lv < 256; lv++ {
			if got := m.Mem(n)[lv]; got != 1 {
				t.Fatalf("node %d word %d = %d, want 1", n, lv, got)
			}
		}
	}
}
