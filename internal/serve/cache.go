package serve

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
)

// Epoch-keyed query cache with request collapsing.
//
// Query results are pure functions of (epoch, endpoint, canonicalized
// parameters): snapshots are immutable and every algorithm run is
// deterministic for a fixed server config. The cache exploits that in
// three layers, outermost first:
//
//  1. ETag / If-None-Match: the ETag of a GET response is derived from the
//     key alone, so an unchanged-epoch poll is answered 304 with no body
//     and no graph work — before the cache is even consulted.
//  2. Result cache: rendered response bodies are kept in an LRU bounded by
//     total byte size and served verbatim — byte-identical replays,
//     epoch-keyed so a mutation (new epoch) invalidates implicitly; a
//     prior epoch's entry can never be returned because the lookup key
//     always carries the current epoch.
//  3. Singleflight: concurrent identical misses collapse onto one
//     in-flight computation; followers wait and replay the leader's bytes
//     instead of burning worker-pool slots on duplicate work.
//
// Entries are only stored when the epoch was stable across the
// computation (checked by the caller), so a cached body always matches
// the epoch in its key.

type cacheKey struct {
	epoch  uint64
	path   string
	params string
}

// etag derives the deterministic entity tag for the key. boot is a
// per-server-instance nonce: epochs restart from the initial graph on
// every boot, so without it a tag from a previous run (different graph,
// same epoch) could match and 304 a client into keeping stale bytes. It
// is a strong validator: two resources with this tag are byte-identical
// whenever they were produced by the same instance at the same epoch with
// the same parameters.
func (k cacheKey) etag(boot uint64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s?%s", boot, k.path, k.params)
	return fmt.Sprintf("\"e%d-%016x\"", k.epoch, h.Sum64())
}

// canonicalParams renders query parameters in a canonical order so
// ?a=1&b=2 and ?b=2&a=1 share a cache entry. Keys and values are
// re-escaped: they arrive decoded, and joining them raw would collide
// distinct requests (e.g. a value containing a literal "&k=v") onto one
// key.
func canonicalParams(q url.Values) string {
	if len(q) == 0 {
		return ""
	}
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		// Values of a repeated key keep their request order: handlers read
		// the first value (url.Values.Get), so ?src=1&src=2 and
		// ?src=2&src=1 are different requests and must not share a key.
		for _, v := range q[k] {
			if b.Len() > 0 {
				b.WriteByte('&')
			}
			b.WriteString(url.QueryEscape(k))
			b.WriteByte('=')
			b.WriteString(url.QueryEscape(v))
		}
	}
	return b.String()
}

type cacheEntry struct {
	key  cacheKey
	body []byte
	elem *list.Element
}

// flight is one in-progress computation; followers block on done and then
// replay the leader's recorded response.
type flight struct {
	done   chan struct{}
	status int
	body   []byte
	header http.Header
	cached bool // leader stored the body (epoch-stable 200)
}

// CacheStats is the counter snapshot exported under /stats.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Collapsed uint64 `json:"collapsed"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

type queryCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[cacheKey]*cacheEntry
	lru      list.List // front = most recent; values are *cacheEntry
	flights  map[cacheKey]*flight

	hits, misses, collapsed, evictions uint64
}

func newQueryCache(maxBytes int64) *queryCache {
	return &queryCache{
		maxBytes: maxBytes,
		entries:  make(map[cacheKey]*cacheEntry),
		flights:  make(map[cacheKey]*flight),
	}
}

// acquire resolves key in one critical section: a cached body (hit), an
// existing in-flight computation to wait on (collapsed), or a freshly
// created flight the caller must lead (miss). Checking the entry map and
// the flight map under one lock is what makes "N concurrent identical
// queries → exactly one computation" airtight: a leader stores the entry
// before retiring its flight, so every interleaving of a second request
// sees either the flight or the entry — hits+collapsed+misses partitions
// the GETs and misses equals started computations.
func (c *queryCache) acquire(key cacheKey) (body []byte, f *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		return e.body, nil, false
	}
	if f, ok := c.flights[key]; ok {
		c.collapsed++
		return nil, f, false
	}
	c.misses++
	f = &flight{done: make(chan struct{})}
	c.flights[key] = f
	return nil, f, true
}

// store inserts a body and evicts LRU entries past the byte bound. Bodies
// larger than the whole cache are not stored.
func (c *queryCache) store(key cacheKey, body []byte) {
	size := int64(len(body))
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return // a concurrent leader of the same key beat us; keep theirs
	}
	e := &cacheEntry{key: key, body: body}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += size
	for c.bytes > c.maxBytes {
		tail := c.lru.Back()
		old := tail.Value.(*cacheEntry)
		c.lru.Remove(tail)
		delete(c.entries, old.key)
		c.bytes -= int64(len(old.body))
		c.evictions++
	}
}

// finish retires key's flight. The leader populates the flight's
// status/body and closes done before calling; followers woken by the
// close replay those fields.
func (c *queryCache) finish(key cacheKey) {
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
}

func (c *queryCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Collapsed: c.collapsed,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}

// bodyRecorder captures a handler's response for replay and caching.
type bodyRecorder struct {
	header http.Header
	status int
	body   []byte
}

func newBodyRecorder() *bodyRecorder {
	return &bodyRecorder{header: make(http.Header), status: http.StatusOK}
}

func (r *bodyRecorder) Header() http.Header { return r.header }

func (r *bodyRecorder) WriteHeader(status int) { r.status = status }

func (r *bodyRecorder) Write(p []byte) (int, error) {
	r.body = append(r.body, p...)
	return len(p), nil
}
