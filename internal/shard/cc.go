package shard

import (
	"time"

	"aamgo/internal/graph"
)

// CCResult carries the sharded connected-components labeling: Labels[v] is
// the smallest vertex id in v's component.
type CCResult struct {
	Labels []int32
	// Rounds counts label-propagation rounds until the global fixed point.
	Rounds int
	Result
}

// Components labels connected components by min-label propagation across
// cfg.Shards shards (the same FF&MF min-combine operator as the
// single-runtime internal/algo version): every round each shard pushes its
// vertices' labels to all neighbors, cross-shard pushes travel as
// coalesced batches, and the run ends when a round commits no update
// anywhere. The fixed point — the minimum vertex id flooding each
// component — is unique, so the labeling is identical to the sequential
// reference for every shard count, mechanism and flush policy.
func Components(g *graph.Graph, cfg Config) (CCResult, error) {
	if g.N == 0 {
		return CCResult{Labels: []int32{}}, nil
	}
	ex, err := New(g, 1, cfg) // one word per vertex: label+1, 0 = unset
	if err != nil {
		return CCResult{}, err
	}

	// changed is a per-worker commit counter (single-writer: OnCommit runs
	// on the applying worker); the coordinator sums it at the barrier.
	changed := make([]uint64, ex.Workers())

	min := ex.Register(&Op{
		Name: "cc-min",
		Addr: func(lv int, arg uint64) int { return lv },
		Mutate: func(c, arg uint64) (uint64, bool) {
			if c != 0 && c <= arg+1 {
				return 0, false
			}
			return arg + 1, true
		},
		OnCommit: func(w *Worker, lv int, arg uint64) {
			changed[w.Index()]++
		},
	})

	t0 := time.Now()
	ex.Parallel(func(w *Worker) {
		lo, hi := w.Range()
		for v := lo; v < hi; v++ {
			w.S.Store(v-w.S.Lo, uint64(v)+1) // contiguous range: O(1) local index
		}
	})

	rounds := 0
	for {
		for i := range changed {
			changed[i] = 0
		}
		ex.Parallel(func(w *Worker) {
			lo, hi := w.Range()
			for v := lo; v < hi; v++ {
				label := w.S.Load(v-w.S.Lo) - 1
				for _, nv := range g.Neighbors(v) {
					w.Spawn(min, int(nv), label)
				}
			}
		})
		ex.Drain()
		rounds++
		total := uint64(0)
		for _, c := range changed {
			total += c
		}
		// changed is rank-local (commit hooks run at the owner); the fixed
		// point must be global, so sum before deciding (no-op in-process).
		agg := [1]uint64{total}
		ex.AllSum(agg[:])
		if agg[0] == 0 {
			break
		}
	}
	elapsed := time.Since(t0)

	labels := make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		raw := ex.shards[ex.Part.Owner(v)].Load(ex.Part.Local(v))
		labels[v] = int32(raw) - 1
	}
	res := ex.Result()
	res.Elapsed = elapsed
	return CCResult{Labels: labels, Rounds: rounds, Result: res}, nil
}
