package gblas_test

import (
	"math"
	"testing"
	"testing/quick"

	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/exec"
	"aamgo/internal/gblas"
	"aamgo/internal/graph"
	"aamgo/internal/run"
)

func testGraph(seed int64) *graph.Graph {
	return graph.Kronecker(9, 8, seed)
}

func weightedGraph(seed int64) *graph.Graph {
	const n = 400
	b := graph.NewBuilder(n).WithWeights(graph.SymmetricWeight(uint64(seed)))
	g := graph.Kronecker(9, 6, seed)
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				b.AddEdge(int32(u)%n, v%n)
			}
		}
	}
	return b.Dedup().Build()
}

func htmEngine() aam.Config {
	return aam.Config{M: 8, Mechanism: aam.MechHTM}
}

func machineFor(sys interface {
	Handlers([]exec.HandlerFunc) []exec.HandlerFunc
	MemWords() int
}, nodes, threads int, seed int64) exec.Machine {
	prof := exec.BGQ()
	return run.New(run.Sim, exec.Config{
		Nodes: nodes, ThreadsPerNode: threads, MemWords: sys.MemWords(),
		Profile: &prof, Handlers: sys.Handlers(nil), Seed: seed,
	})
}

// --- semiring laws (testing/quick) ---

func TestMinPlusSemiringLaws(t *testing.T) {
	sr := gblas.MinPlus()
	if err := quick.Check(func(a, b, c uint64) bool {
		// Add commutative + associative, Zero identity.
		if sr.Add(a, b) != sr.Add(b, a) {
			return false
		}
		if sr.Add(sr.Add(a, b), c) != sr.Add(a, sr.Add(b, c)) {
			return false
		}
		if sr.Add(a, sr.Zero) != a {
			return false
		}
		// Mul identity and annihilator.
		if sr.Mul(a, sr.One) != a {
			return false
		}
		return sr.Mul(a, sr.Zero) == sr.Zero
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMinPlusSaturates(t *testing.T) {
	sr := gblas.MinPlus()
	if got := sr.Mul(math.MaxUint64-3, 10); got != math.MaxUint64 {
		t.Fatalf("near-infinity add must saturate, got %d", got)
	}
	if got := sr.Mul(gblas.Infinity, 1); got != gblas.Infinity {
		t.Fatalf("inf+1 = %d, want inf", got)
	}
}

func TestOrAndSemiringLaws(t *testing.T) {
	sr := gblas.OrAnd()
	vals := []uint64{0, 1}
	for _, a := range vals {
		for _, b := range vals {
			if sr.Add(a, b) != sr.Add(b, a) || sr.Mul(a, b) != sr.Mul(b, a) {
				t.Fatal("or/and must commute")
			}
			for _, c := range vals {
				if sr.Mul(a, sr.Add(b, c)) != sr.Add(sr.Mul(a, b), sr.Mul(a, c)) {
					t.Fatal("and must distribute over or")
				}
			}
		}
		if sr.Add(a, sr.Zero) != a || sr.Mul(a, sr.One) != a {
			t.Fatal("identity laws")
		}
	}
}

func TestPlusTimesRoundTrip(t *testing.T) {
	if err := quick.Check(func(f float64) bool {
		if math.IsNaN(f) {
			return true
		}
		return gblas.ToF64(gblas.F64(f)) == f
	}, nil); err != nil {
		t.Error(err)
	}
	sr := gblas.PlusTimes()
	if got := gblas.ToF64(sr.Add(gblas.F64(1.5), gblas.F64(2.25))); got != 3.75 {
		t.Fatalf("1.5+2.25 = %v", got)
	}
	if got := gblas.ToF64(sr.Mul(gblas.F64(3), gblas.F64(0.5))); got != 1.5 {
		t.Fatalf("3*0.5 = %v", got)
	}
}

// --- BFS over or-and ---

func TestGBLASBFSMatchesReference(t *testing.T) {
	g := testGraph(7)
	src := 0
	ref := algo.SeqBFS(g, src)

	b := gblas.NewBFS(g, 1, htmEngine())
	m := machineFor(b, 1, 8, 7)
	m.Run(b.Body(src))
	levels := b.Levels(m)

	for v := 0; v < g.N; v++ {
		if int64(ref[v]) != levels[v] {
			t.Fatalf("vertex %d: gblas level %d, reference %d", v, levels[v], ref[v])
		}
	}
}

func TestGBLASBFSDistributed(t *testing.T) {
	g := testGraph(8)
	src := 3
	ref := algo.SeqBFS(g, src)

	b := gblas.NewBFS(g, 4, htmEngine())
	m := machineFor(b, 4, 4, 8)
	m.Run(b.Body(src))
	levels := b.Levels(m)

	for v := 0; v < g.N; v++ {
		if int64(ref[v]) != levels[v] {
			t.Fatalf("vertex %d: gblas level %d, reference %d", v, levels[v], ref[v])
		}
	}
}

func TestGBLASBFSAcrossMechanisms(t *testing.T) {
	g := testGraph(9)
	src := 0
	ref := algo.SeqBFS(g, src)
	for _, mech := range []aam.Mechanism{
		aam.MechHTM, aam.MechAtomic, aam.MechLock,
		aam.MechOptimistic, aam.MechFlatCombining,
	} {
		cfg := aam.Config{M: 8, Mechanism: mech}
		b := gblas.NewBFS(g, 1, cfg)
		m := machineFor(b, 1, 4, 9)
		m.Run(b.Body(src))
		levels := b.Levels(m)
		for v := 0; v < g.N; v++ {
			if int64(ref[v]) != levels[v] {
				t.Fatalf("%v: vertex %d level %d, reference %d", mech, v, levels[v], ref[v])
			}
		}
	}
}

// --- SSSP over min-plus ---

func TestGBLASSSSPMatchesDijkstra(t *testing.T) {
	g := weightedGraph(10)
	src := 0
	ref := algo.SeqSSSP(g, src)

	s := gblas.NewSSSP(g, 1, htmEngine())
	m := machineFor(s, 1, 8, 10)
	m.Run(s.Body(src))
	dists := s.Dists(m)

	for v := 0; v < g.N; v++ {
		if ref[v] != dists[v] {
			t.Fatalf("vertex %d: gblas dist %d, Dijkstra %d", v, dists[v], ref[v])
		}
	}
}

func TestGBLASSSSPDistributed(t *testing.T) {
	g := weightedGraph(11)
	src := 5
	ref := algo.SeqSSSP(g, src)

	s := gblas.NewSSSP(g, 2, htmEngine())
	m := machineFor(s, 2, 4, 11)
	m.Run(s.Body(src))
	dists := s.Dists(m)

	for v := 0; v < g.N; v++ {
		if ref[v] != dists[v] {
			t.Fatalf("vertex %d: gblas dist %d, Dijkstra %d", v, dists[v], ref[v])
		}
	}
}

// --- PageRank over plus-times ---

func TestGBLASPageRankMatchesPowerIteration(t *testing.T) {
	g := testGraph(12)
	const d, k = 0.85, 10
	ref := algo.SeqPageRank(g, d, k)

	p := gblas.NewPageRank(g, 1, d, k, htmEngine())
	m := machineFor(p, 1, 8, 12)
	m.Run(p.Body())
	ranks := p.Ranks(m)

	for v := 0; v < g.N; v++ {
		if diff := math.Abs(ranks[v] - ref[v]); diff > 1e-9 {
			t.Fatalf("vertex %d: gblas rank %g, reference %g (diff %g)", v, ranks[v], ref[v], diff)
		}
	}
}

func TestGBLASPageRankSumsToOne(t *testing.T) {
	g := testGraph(13)
	p := gblas.NewPageRank(g, 1, 0.85, 15, htmEngine())
	m := machineFor(p, 1, 4, 13)
	m.Run(p.Body())
	sum := 0.0
	for _, r := range p.Ranks(m) {
		sum += r
	}
	// Dangling vertices leak mass in the push formulation (as in the
	// paper's Listing 3); with Kronecker multi-edges collapsed the graph
	// has isolated vertices, so allow the same leakage the reference has.
	ref := algo.SeqPageRank(g, 0.85, 15)
	refSum := 0.0
	for _, r := range ref {
		refSum += r
	}
	if math.Abs(sum-refSum) > 1e-9 {
		t.Fatalf("rank mass %g, reference mass %g", sum, refSum)
	}
}

// --- the System as a reusable primitive ---

func TestSystemValuesAndAssignments(t *testing.T) {
	g := testGraph(14)
	b := gblas.NewBFS(g, 1, htmEngine())
	m := machineFor(b, 1, 2, 14)
	m.Run(b.Body(0))
	vals := b.Values(m)
	lvls := b.Assignments(m)
	if len(vals) != g.N || len(lvls) != g.N {
		t.Fatalf("result lengths %d/%d, want %d", len(vals), len(lvls), g.N)
	}
	for v := 0; v < g.N; v++ {
		reached := vals[v] != 0
		if reached != (lvls[v] >= 0) {
			t.Fatalf("vertex %d: y=%d but level=%d", v, vals[v], lvls[v])
		}
	}
}

func TestGBLASBFSDeterministicLevels(t *testing.T) {
	// Levels are a fixpoint of the or-and product: independent of seeds,
	// thread counts and mechanisms.
	g := testGraph(15)
	var ref []int64
	for _, threads := range []int{1, 8} {
		b := gblas.NewBFS(g, 1, htmEngine())
		m := machineFor(b, 1, threads, int64(threads))
		m.Run(b.Body(2))
		lv := b.Levels(m)
		if ref == nil {
			ref = lv
			continue
		}
		for v := range lv {
			if lv[v] != ref[v] {
				t.Fatalf("T=%d: vertex %d level %d != %d", threads, v, lv[v], ref[v])
			}
		}
	}
}
