package bench

import (
	"fmt"

	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/run"
	"aamgo/internal/stats"
	"aamgo/internal/vtime"
)

// machine constructs a machine for the given profile. The profile is
// copied so experiments can tweak it without aliasing.
func machine(backend string, prof exec.MachineProfile, nodes, threads, memWords int,
	handlers []exec.HandlerFunc, seed int64) exec.Machine {
	p := prof
	return run.New(backend, exec.Config{
		Nodes:          nodes,
		ThreadsPerNode: threads,
		MemWords:       memWords,
		Profile:        &p,
		Handlers:       handlers,
		Seed:           seed,
	})
}

// maxDegVertex returns the vertex of maximum degree — the conventional BFS
// source for power-law graphs (it reaches the giant component).
func maxDegVertex(g *graph.Graph) int {
	best, bd := 0, -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > bd {
			best, bd = v, d
		}
	}
	return best
}

// bfsRun is one measured BFS execution.
type bfsRun struct {
	Elapsed vtime.Time
	Stats   stats.Total
	Levels  []vtime.Time
	Parents []int64
}

// runBFS executes a BFS and returns the measurement.
func runBFS(backend string, prof exec.MachineProfile, g *graph.Graph,
	nodes, threads int, cfg algo.BFSConfig, src int, seed int64) bfsRun {
	b := algo.NewBFS(g, nodes, cfg)
	m := machine(backend, prof, nodes, threads, b.MemWords(), b.Handlers(nil), seed)
	res := m.Run(b.Body(src))
	return bfsRun{
		Elapsed: res.Elapsed,
		Stats:   res.Stats,
		Levels:  b.LevelTimes,
		Parents: b.Parents(m),
	}
}

// aamBFSConfig builds the standard AAM BFS configuration for mechanism HTM
// with coarsening factor m and the named HTM variant resolved against prof.
func aamBFSConfig(prof *exec.MachineProfile, variant string, m int) algo.BFSConfig {
	return algo.BFSConfig{
		Mode: algo.BFSAAM,
		Engine: aam.Config{
			M:         m,
			Mechanism: aam.MechHTM,
			HTM:       prof.HTMVariant(variant),
		},
		VisitedCheck: true,
	}
}

// g500Config is the Graph500 atomics baseline configuration.
func g500Config() algo.BFSConfig {
	return algo.BFSConfig{Mode: algo.BFSGraph500, VisitedCheck: true}
}

// fmtMS formats virtual time as milliseconds with 3 significant decimals.
func fmtMS(t vtime.Time) string { return fmt.Sprintf("%.3f", t.Millis()) }

// fmtUS formats virtual time as microseconds.
func fmtUS(t vtime.Time) string { return fmt.Sprintf("%.3f", t.Micros()) }

// fmtS formats virtual time as seconds.
func fmtS(t vtime.Time) string { return fmt.Sprintf("%.4f", t.Seconds()) }

// speedup formats base/x as a speedup factor.
func speedup(base, x vtime.Time) string {
	if x == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(base)/float64(x))
}

// speedupF is the numeric form of speedup.
func speedupF(base, x vtime.Time) float64 {
	if x == 0 {
		return 0
	}
	return float64(base) / float64(x)
}

// threadsFor clamps the requested thread counts to the profile's maximum.
func threadsFor(prof exec.MachineProfile, want []int) []int {
	var out []int
	for _, t := range want {
		if t <= prof.MaxThreads {
			out = append(out, t)
		}
	}
	return out
}

// minIdx returns the index of the smallest value.
func minIdx(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// geomSeq returns {start, start*2, ..., <=end}.
func geomSeq(start, end int) []int {
	var out []int
	for v := start; v <= end; v *= 2 {
		out = append(out, v)
	}
	return out
}

// itoa formats an int.
func itoa(i int) string { return fmt.Sprintf("%d", i) }

// utoa formats a uint64.
func utoa(u uint64) string { return fmt.Sprintf("%d", u) }

// ftoa formats a float with 3 decimals.
func ftoa(f float64) string { return fmt.Sprintf("%.3f", f) }

// max64 returns the larger of two values, accepting common integer types.
func max64[T ~int64 | ~uint64](a, b T) T {
	if a > b {
		return a
	}
	return b
}
