package gblas

import (
	"sort"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

// Triangle counting, the GraphBLAS standard's showcase kernel: the count
// is ⟨A ⊗ (A·A)⟩ restricted by the adjacency mask, which in push form is a
// wedge-closure accumulation — for every edge (v,u) with v < u, add
// |N(v) ∩ N(u) ∩ (u,∞)| to u's counter. Each accumulation runs as an AAM
// activity over the plus-times (integer-plus) monoid, so the kernel
// exercises the same coarsening/mechanism machinery as BFS and PageRank.

// Triangles is a prepared triangle count. Construct with NewTriangles,
// splice Handlers, size memory with MemWords, run Body SPMD, read Count
// (total) or PerVertex.
type Triangles struct {
	G    *graph.Graph
	Part graph.Partition

	rt    *aam.Runtime
	accOp int
	eng   aam.Config

	sorted [][]int32 // per-vertex sorted adjacency (host-side, immutable)

	L     int
	yBase int
}

// NewTriangles prepares the kernel over g distributed across nodes.
func NewTriangles(g *graph.Graph, nodes int, eng aam.Config) *Triangles {
	part := graph.NewPartition(g.N, nodes)
	t := &Triangles{G: g, Part: part, eng: eng, L: part.MaxLocal()}
	t.eng.Part = part

	t.sorted = make([][]int32, g.N)
	for v := 0; v < g.N; v++ {
		n := g.Neighbors(v)
		s := make([]int32, len(n))
		copy(s, n)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		// Collapse duplicates (multi-edges must not inflate counts).
		uniq := s[:0]
		for i, w := range s {
			if i == 0 || w != s[i-1] {
				uniq = append(uniq, w)
			}
		}
		t.sorted[v] = uniq
	}

	t.rt = aam.NewRuntime()
	t.yBase = 0
	t.accOp = t.rt.Register(&aam.Op{
		Name:          "triangles-acc",
		AlwaysSucceed: true,
		Body: func(tx exec.Tx, e *aam.Engine, u int, arg uint64) (uint64, bool) {
			tx.Write(t.yBase+u, tx.Read(t.yBase+u)+arg)
			return 0, false
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, u int, arg uint64) (uint64, bool) {
			ctx.FetchAdd(t.yBase+u, arg)
			return 0, false
		},
	})
	return t
}

// MemWords returns the per-node memory size.
func (t *Triangles) MemWords() int { return t.L + t.L + 16 } // y + lock region

// Handlers splices the runtime handlers.
func (t *Triangles) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	return t.rt.Handlers(existing)
}

// closures returns |N(v) ∩ N(u) ∩ (u,∞)| by sorted merge.
func (t *Triangles) closures(v, u int32) uint64 {
	a, b := t.sorted[v], t.sorted[u]
	// Skip to entries > u.
	i := sort.Search(len(a), func(k int) bool { return a[k] > u })
	j := sort.Search(len(b), func(k int) bool { return b[k] > u })
	var n uint64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Body returns the SPMD body: each thread scans its slice of locally owned
// vertices v, and for each edge (v,u) with v < u spawns the closure count
// at u's owner.
func (t *Triangles) Body() func(ctx exec.Context) {
	return func(ctx exec.Context) {
		cfg := t.eng
		cfg.LockBase = t.L
		eng := aam.NewEngine(t.rt, ctx, cfg)
		me := ctx.NodeID()
		glo, ghi := t.Part.Range(me)
		n := ghi - glo
		T := ctx.ThreadsPerNode()
		lid := ctx.LocalID()
		lo, hi := glo+lid*n/T, glo+(lid+1)*n/T
		for v := lo; v < hi; v++ {
			adj := t.sorted[v]
			ctx.Compute(vtime.Time(len(adj)/2+1) * ctx.Profile().LoadCost)
			for _, u := range adj {
				if int32(v) >= u {
					continue
				}
				c := t.closures(int32(v), u)
				// Charge the merge scan against both adjacency lists.
				ctx.Compute(vtime.Time((len(adj)+len(t.sorted[u]))/8+1) * ctx.Profile().LoadCost)
				if c == 0 {
					continue
				}
				eng.Spawn(t.accOp, int(u), c)
			}
		}
		eng.Drain()
	}
}

// PerVertex gathers the per-vertex wedge-closure counts; their sum is the
// triangle count.
func (t *Triangles) PerVertex(m exec.Machine) []uint64 {
	out := make([]uint64, t.G.N)
	for v := 0; v < t.G.N; v++ {
		out[v] = m.Mem(t.Part.Owner(v))[t.yBase+t.Part.Local(v)]
	}
	return out
}

// Count gathers the total triangle count.
func (t *Triangles) Count(m exec.Machine) uint64 {
	var total uint64
	for _, c := range t.PerVertex(m) {
		total += c
	}
	return total
}

// SeqTriangles is the sequential reference: sorted-adjacency merge with
// the same v < u < w orientation.
func SeqTriangles(g *graph.Graph) uint64 {
	sorted := make([][]int32, g.N)
	for v := 0; v < g.N; v++ {
		n := g.Neighbors(v)
		s := make([]int32, len(n))
		copy(s, n)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		uniq := s[:0]
		for i, w := range s {
			if i == 0 || w != s[i-1] {
				uniq = append(uniq, w)
			}
		}
		sorted[v] = uniq
	}
	var total uint64
	for v := int32(0); v < int32(g.N); v++ {
		for _, u := range sorted[v] {
			if v >= u {
				continue
			}
			a, b := sorted[v], sorted[u]
			i := sort.Search(len(a), func(k int) bool { return a[k] > u })
			j := sort.Search(len(b), func(k int) bool { return b[k] > u })
			for i < len(a) && j < len(b) {
				switch {
				case a[i] < b[j]:
					i++
				case a[i] > b[j]:
					j++
				default:
					total++
					i++
					j++
				}
			}
		}
	}
	return total
}
