package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"aamgo/internal/dyn"
	"aamgo/internal/graph"
)

func mustUnmarshal(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("bad JSON %q: %v", b, err)
	}
}

// newCacheServer builds a server plus direct access to the *Server for
// counter assertions.
func newCacheServer(t *testing.T, cfg Config) (*httptest.Server, *Server, *dyn.Graph) {
	t.Helper()
	g, err := dyn.New(graph.Community(256, 8, 3, 0.1, 5))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s, g
}

func get(t *testing.T, url string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

// TestCanonicalParamsEscaping: decoded values must be re-escaped so a
// value containing literal "&k=v" cannot collide with genuinely distinct
// parameters (which would alias their cache entries and ETags).
func TestCanonicalParamsEscaping(t *testing.T) {
	a := canonicalParams(url.Values{"mech": {"lock"}, "part": {"edge"}})
	b := canonicalParams(url.Values{"mech": {"lock&part=edge"}})
	if a == b {
		t.Fatalf("distinct queries collide on %q", a)
	}
	if x, y := canonicalParams(url.Values{"b": {"2"}, "a": {"1"}}), canonicalParams(url.Values{"a": {"1"}, "b": {"2"}}); x != y {
		t.Fatalf("order not canonical: %q vs %q", x, y)
	}
}

// TestCacheHitByteIdentical: a repeated identical query is answered from
// the cache — byte for byte the same body, no second computation.
func TestCacheHitByteIdentical(t *testing.T) {
	ts, s, _ := newCacheServer(t, Config{})
	url := ts.URL + "/query/pagerank?iters=5&top=3"
	_, body1 := get(t, url, nil)
	q1 := s.queries.Load()
	resp2, body2 := get(t, url, nil)
	if string(body1) != string(body2) {
		t.Fatalf("cached replay differs from original:\n%s\nvs\n%s", body1, body2)
	}
	if got := s.queries.Load(); got != q1 {
		t.Fatalf("second identical query recomputed (queries %d → %d)", q1, got)
	}
	cs := s.cache.stats()
	if cs.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1 (%+v)", cs.Hits, cs)
	}
	if resp2.Header.Get("ETag") == "" {
		t.Fatal("cached response missing ETag")
	}
	// Param order must not defeat the cache.
	_, body3 := get(t, ts.URL+"/query/pagerank?top=3&iters=5", nil)
	if string(body3) != string(body1) {
		t.Fatal("canonicalization failed: reordered params missed the cache")
	}
	if cs := s.cache.stats(); cs.Hits != 2 {
		t.Fatalf("cache hits = %d, want 2 after reordered-param hit", cs.Hits)
	}
}

// TestCacheStaleness: a mutation advances the epoch and must invalidate —
// the next query may never see the prior epoch's answer.
func TestCacheStaleness(t *testing.T) {
	ts, s, g := newCacheServer(t, Config{})
	url := ts.URL + "/graph"
	_, body1 := get(t, url, nil)
	epoch1 := g.Epoch()

	res, err := g.Apply([]dyn.Mutation{dyn.AddEdge(0, 200)}, dyn.TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch == epoch1 {
		t.Fatal("mutation did not advance the epoch")
	}
	_, body2 := get(t, url, nil)
	if string(body1) == string(body2) {
		t.Fatal("post-mutation query served the prior epoch's cached body")
	}
	var g1, g2 struct {
		Epoch uint64 `json:"epoch"`
		Arcs  int64  `json:"arcs"`
	}
	mustUnmarshal(t, body1, &g1)
	mustUnmarshal(t, body2, &g2)
	if g2.Epoch != res.Epoch || g2.Arcs != g1.Arcs+2 {
		t.Fatalf("stale answer after mutation: %+v then %+v (want epoch %d)", g1, g2, res.Epoch)
	}
	// The old entry stays in the LRU but is unreachable: hits for the new
	// epoch must come from a fresh computation.
	if cs := s.cache.stats(); cs.Misses < 2 {
		t.Fatalf("expected a second miss after invalidation, got %+v", cs)
	}
}

// TestRequestCollapsing: concurrent identical in-flight queries must
// collapse onto one computation and all receive the leader's bytes. The
// test plays leader itself by pre-registering the flight, so the followers
// are deterministically in-flight — no timing assumptions.
func TestRequestCollapsing(t *testing.T) {
	ts, s, g := newCacheServer(t, Config{})
	key := cacheKey{epoch: g.Epoch(), path: "/query/cc", params: ""}
	_, f, leader := s.cache.acquire(key)
	if !leader {
		t.Fatal("test could not claim the flight")
	}

	const followers = 6
	bodies := make([][]byte, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, bodies[i] = get(t, ts.URL+"/query/cc", nil)
		}(i)
	}
	// Wait until every follower is collapsed onto the flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cs := s.cache.stats(); cs.Collapsed >= followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers did not collapse: %+v", s.cache.stats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.queries.Load(); got != 0 {
		t.Fatalf("%d computations ran while the flight was open", got)
	}
	payload := []byte(`{"components":1,"epoch":0,"n":256,"wall_time_ns":1}`)
	f.status, f.body = http.StatusOK, payload
	f.header = http.Header{"Content-Type": []string{"application/json"}}
	f.cached = true
	s.cache.store(key, payload)
	close(f.done)
	s.cache.finish(key)
	wg.Wait()

	for i, b := range bodies {
		if string(b) != string(payload) {
			t.Fatalf("follower %d got %q, want the leader's bytes", i, b)
		}
	}
	if got := s.queries.Load(); got != 0 {
		t.Fatalf("collapsed followers still ran %d computations", got)
	}
}

// TestConcurrentIdenticalQueriesComputeOnce is the -race stress version:
// unorchestrated concurrent identical queries over a fixed epoch must
// produce byte-identical answers from exactly one computation (collapsed
// or cache-hit, depending on interleaving).
func TestConcurrentIdenticalQueriesComputeOnce(t *testing.T) {
	ts, s, _ := newCacheServer(t, Config{})
	const clients = 12
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, bodies[i] = get(t, ts.URL+"/query/bfs?src=0", nil)
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("client %d diverged:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := s.queries.Load(); got != 1 {
		t.Fatalf("computations = %d, want exactly 1 for %d identical queries", got, clients)
	}
	cs := s.cache.stats()
	if cs.Misses != 1 || cs.Hits+cs.Collapsed != clients-1 {
		t.Fatalf("accounting off: %+v for %d clients", cs, clients)
	}
}

// TestETagConditionalGET covers the 304 path on query, graph and stats
// endpoints: hit (matching tag, no body) and miss (stale tag after a
// mutation → fresh 200).
func TestETagConditionalGET(t *testing.T) {
	ts, s, g := newCacheServer(t, Config{})
	for _, path := range []string{"/graph", "/query/cc", "/query/pagerank?iters=3"} {
		url := ts.URL + path
		resp1, _ := get(t, url, nil)
		tag := resp1.Header.Get("ETag")
		if tag == "" {
			t.Fatalf("%s: no ETag on 200", path)
		}
		resp2, body2 := get(t, url, map[string]string{"If-None-Match": tag})
		if resp2.StatusCode != http.StatusNotModified || len(body2) != 0 {
			t.Fatalf("%s: conditional GET got %d with %d body bytes, want bodyless 304", path, resp2.StatusCode, len(body2))
		}
	}
	if _, err := g.Apply([]dyn.Mutation{dyn.AddEdge(3, 99)}, dyn.TxConfig{}); err != nil {
		t.Fatal(err)
	}
	// Tag miss after the epoch moved: full 200 with a new tag.
	resp1, _ := get(t, ts.URL+"/graph", nil)
	tagOld := resp1.Header.Get("ETag")
	resp3, body3 := get(t, ts.URL+"/graph", map[string]string{"If-None-Match": `"e0-deadbeef"`})
	if resp3.StatusCode != http.StatusOK || len(body3) == 0 {
		t.Fatalf("stale-tag GET got %d, want 200 with body", resp3.StatusCode)
	}
	if resp3.Header.Get("ETag") != tagOld {
		t.Fatalf("same-epoch tags differ: %q vs %q", resp3.Header.Get("ETag"), tagOld)
	}

	// If-None-Match: * must not short-circuit: a request that would fail
	// validation has no current representation to be "not modified" from.
	respStar, _ := get(t, ts.URL+"/query/bfs?src=-1", map[string]string{"If-None-Match": "*"})
	if respStar.StatusCode != http.StatusBadRequest {
		t.Fatalf("If-None-Match: * on invalid request got %d, want 400", respStar.StatusCode)
	}

	// /stats and /metrics are uncacheable live reads: no ETag, no-store,
	// and a conditional poll must get a fresh 200 with moving counters —
	// never a 304 that freezes latency/counter fields (the old
	// epoch-derived-tag bug).
	for _, path := range []string{"/stats", "/metrics"} {
		respS, bodyS := get(t, ts.URL+path, nil)
		if tag := respS.Header.Get("ETag"); tag != "" {
			t.Fatalf("%s carries ETag %q, want none", path, tag)
		}
		if cc := respS.Header.Get("Cache-Control"); cc != "no-store" {
			t.Fatalf("%s Cache-Control = %q, want no-store", path, cc)
		}
		respS2, bodyS2 := get(t, ts.URL+path, map[string]string{"If-None-Match": `W/"anything"`})
		if respS2.StatusCode != http.StatusOK || len(bodyS2) == 0 {
			t.Fatalf("%s conditional poll got %d with %d body bytes, want full 200", path, respS2.StatusCode, len(bodyS2))
		}
		if len(bodyS) == 0 {
			t.Fatalf("%s returned empty body", path)
		}
	}
	// Counters keep moving between polls (requests_total counts the polls
	// themselves).
	var st1, st2 struct {
		Requests uint64 `json:"requests"`
	}
	_, b1 := get(t, ts.URL+"/stats", nil)
	_, b2 := get(t, ts.URL+"/stats", nil)
	if err := json.Unmarshal(b1, &st1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Requests <= st1.Requests {
		t.Fatalf("back-to-back /stats requests counters %d then %d, want strictly increasing", st1.Requests, st2.Requests)
	}
	if n := s.notModified.Load(); n < 3 {
		t.Fatalf("etag_304 counter = %d, want >= 3 (query-path 304s)", n)
	}
}

// TestCacheDisabled: CacheBytes < 0 turns the cache off — every identical
// query recomputes — while ETag/304 keeps working.
func TestCacheDisabled(t *testing.T) {
	ts, s, _ := newCacheServer(t, Config{CacheBytes: -1})
	if s.cache != nil {
		t.Fatal("cache should be nil when disabled")
	}
	url := ts.URL + "/query/cc"
	get(t, url, nil)
	resp, _ := get(t, url, nil)
	if got := s.queries.Load(); got != 2 {
		t.Fatalf("computations = %d, want 2 with the cache off", got)
	}
	tag := resp.Header.Get("ETag")
	if tag == "" {
		t.Fatal("no ETag with cache off")
	}
	resp304, _ := get(t, url, map[string]string{"If-None-Match": tag})
	if resp304.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET with cache off got %d, want 304", resp304.StatusCode)
	}
	if got := s.queries.Load(); got != 2 {
		t.Fatal("304 path ran a computation")
	}
}

// TestCacheEviction: a byte-bounded cache evicts LRU entries instead of
// growing without bound.
func TestCacheEviction(t *testing.T) {
	ts, s, _ := newCacheServer(t, Config{CacheBytes: 512})
	for i := 0; i < 8; i++ {
		get(t, fmt.Sprintf("%s/query/bfs?src=%d", ts.URL, i), nil)
	}
	cs := s.cache.stats()
	if cs.Bytes > cs.MaxBytes {
		t.Fatalf("cache holds %d bytes over the %d bound", cs.Bytes, cs.MaxBytes)
	}
	if cs.Evictions == 0 && cs.Entries >= 8 {
		t.Fatalf("no evictions despite %d entries in a 512-byte cache", cs.Entries)
	}
}

// TestStatsExposesCacheCounters: the /stats body carries the cache and
// freeze sections the ops side monitors.
func TestStatsExposesCacheCounters(t *testing.T) {
	ts, _, _ := newCacheServer(t, Config{})
	get(t, ts.URL+"/query/cc", nil)
	get(t, ts.URL+"/query/cc", nil)
	_, body := get(t, ts.URL+"/stats", nil)
	var stats struct {
		Cache  *CacheStats `json:"cache"`
		Freeze struct {
			Freezes uint64 `json:"Freezes"`
		} `json:"freeze"`
		ETag304 uint64 `json:"etag_304"`
	}
	mustUnmarshal(t, body, &stats)
	if stats.Cache == nil || stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("cache section wrong: %+v", stats.Cache)
	}
}
