package shard

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"aamgo/internal/graph"
)

// The cluster layer is the session protocol over the tcp transport: a
// coordinator process listens, N worker processes join, and each
// algorithm call becomes a job — the coordinator ships the graph, the
// parameters and the normalized config to every worker (ftJob), every
// rank runs the same SPMD driver with a tcpTransport plugged into its
// executor, and the run's collectives keep the ranks in lockstep until
// Result() merges the counters. Results are bit-identical to the
// in-process engine; the coordinator returns them, the workers discard
// theirs.
//
// Since PR 10 the session survives worker failure (DESIGN.md §12):
//
//   - Failure detection: the coordinator heartbeats quiet links (ftPing /
//     ftPong) and evicts ranks whose links go silent past the liveness
//     deadline; collective timeouts catch mid-job deaths sooner.
//   - Eviction and rejoin: an evicted rank's slot stays open — the same
//     or a replacement worker re-handshakes into it (jobs are stateless
//     SPMD over a shipped graph, so a fresh ftJob fully re-initializes
//     state; nothing needs to be recovered from the dead process).
//   - Job retry: Cluster.run retries a failed job with jittered backoff
//     over the surviving/rejoined ranks, shrinking the attempt's rank
//     set when no replacement arrives within the grace window. Before a
//     retry, the in-flight attempt is aborted on survivors (ftAbort) and
//     acknowledged, so no frame of a dead attempt can leak into the next.
//   - Only a fingerprint desync still poisons the cluster: ranks running
//     divergent code would fail identically on every retry.
//
// Coordinator:
//
//	c, _ := shard.NewCluster("127.0.0.1:0", 2)
//	// ... workers join c.Addr() ...
//	if err := c.Accept(); err != nil { ... }
//	res, err := c.BFS(g, 0, shard.Config{Shards: 8})
//	c.Close()
//
// Worker: shard.JoinCluster(addr) serves jobs until the coordinator says
// bye (cmd/aam-worker wraps exactly this, with -rejoin looping it).

// handshakeTimeout bounds Accept's wait for each worker and the
// hello/welcome exchange.
const handshakeTimeout = 60 * time.Second

// Dial tuning for JoinCluster: workers routinely start before their
// coordinator has bound its listener, so the dial retries with capped
// exponential backoff. The defaults give a grace window of roughly a
// minute (50 ms doubling to a 2 s cap over 30 attempts) — comparable to
// handshakeTimeout — after which the last dial error surfaces.
const (
	joinDialTimeout  = 5 * time.Second
	joinDialAttempts = 30
	joinBackoffBase  = 50 * time.Millisecond
	joinBackoffCap   = 2 * time.Second
)

// retryBackoffCap bounds the doubling job-retry backoff.
const retryBackoffCap = 2 * time.Second

// dialCoordinator dials addr with bounded, jittered exponential backoff.
// Jitter (uniform over the upper half of each window) keeps a fleet of
// workers restarted together from re-dialing in lockstep.
func dialCoordinator(addr string, attempts int) (net.Conn, error) {
	backoff := joinBackoffBase
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1)))
			if backoff *= 2; backoff > joinBackoffCap {
				backoff = joinBackoffCap
			}
		}
		conn, err := net.DialTimeout("tcp", addr, joinDialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("shard: dialing coordinator %s: %d attempts exhausted: %w", addr, attempts, lastErr)
}

// jobSpec is one algorithm invocation shipped to every worker.
type jobSpec struct {
	Nonce    uint64 // attempt id, strictly increasing per cluster
	JobRank  int    // recipient's rank within this attempt's dense set
	JobRanks int    // attempt rank-set size (≤ cluster size)
	Name     string
	Words    int // reserved (state width is the runner's business)
	Params   []uint64
	Cfg      Config
	G        *graph.Graph
}

// jobRunners maps job names to SPMD entry points; every rank — the
// coordinator through Cluster.run's closure, workers through this table
// — must execute the same driver. Tests register extra runners (the
// package is internal, so the table is package-private).
var jobRunners = map[string]func(g *graph.Graph, params []uint64, cfg Config) error{
	"bfs": func(g *graph.Graph, p []uint64, cfg Config) error {
		_, err := BFS(g, int(int64(p[0])), cfg)
		return err
	},
	"pagerank": func(g *graph.Graph, p []uint64, cfg Config) error {
		_, err := PageRank(g, math.Float64frombits(p[0]), int(int64(p[1])), cfg)
		return err
	},
	"cc": func(g *graph.Graph, p []uint64, cfg Config) error {
		_, err := Components(g, cfg)
		return err
	},
	"sssp": func(g *graph.Graph, p []uint64, cfg Config) error {
		_, err := SSSP(g, int(int64(p[0])), p[1], cfg)
		return err
	},
	"mst": func(g *graph.Graph, p []uint64, cfg Config) error {
		_, err := MST(g, cfg)
		return err
	},
	"coloring": func(g *graph.Graph, p []uint64, cfg Config) error {
		_, err := Coloring(g, p[0], cfg)
		return err
	},
}

// ClusterOptions tunes the coordinator's failure handling. The zero
// value gives production defaults.
type ClusterOptions struct {
	// Net carries the session-level clocks: HeartbeatEvery and Liveness
	// drive the heartbeat loop, CollTimeout bounds the abort-ack wait.
	// Zero fields take the Config defaults (withDefaults).
	Net Config
	// JobRetries is how many times a failed job is retried over the
	// surviving ranks (0 = default of 2; negative = no retries).
	JobRetries int
	// RetryBackoff is the base of the jittered, doubling backoff between
	// attempts (default 100ms, capped at 2s).
	RetryBackoff time.Duration
	// RejoinGrace is how long a retry waits for evicted ranks to be
	// replaced before shrinking the attempt's rank set (default 2s).
	RejoinGrace time.Duration
	// Chaos, when non-nil, injects deterministic frame-level faults on
	// every worker link (tests only; see chaos.go).
	Chaos *ChaosPlan
	// Logf, when non-nil, receives eviction/rejoin/retry log lines.
	Logf func(format string, args ...any)
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	o.Net = o.Net.withDefaults()
	if o.JobRetries == 0 {
		o.JobRetries = 2
	} else if o.JobRetries < 0 {
		o.JobRetries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Millisecond
	}
	if o.RejoinGrace <= 0 {
		o.RejoinGrace = 2 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Cluster is the coordinator's handle: rank 0 of a coordinator + N
// workers machine. Job submission is serialized (runMu); membership
// changes (evictions, rejoins) happen concurrently under mu.
type Cluster struct {
	opts     ClusterOptions
	ln       net.Listener
	node     *node
	maxRanks int

	mu      sync.Mutex
	peers   []*link // session rank → live link (nil = vacant slot)
	claimed []bool  // vacant slot currently mid-handshake
	poison  error   // protocol desync; poisons subsequent runs
	closed  bool

	stopCh chan struct{} // closes on Close: stops accept/heartbeat loops

	runMu sync.Mutex
	nonce uint64
}

// NewCluster listens on addr for workers peers to join, with default
// fault-tolerance options. Call Accept to wait for all of them; Addr
// gives the bound address (useful with ":0").
func NewCluster(addr string, workers int) (*Cluster, error) {
	return NewClusterOpts(addr, workers, ClusterOptions{})
}

// NewClusterOpts is NewCluster with explicit failure-handling options.
func NewClusterOpts(addr string, workers int, opts ClusterOptions) (*Cluster, error) {
	if workers < 1 {
		return nil, fmt.Errorf("shard: cluster needs >= 1 worker, got %d", workers)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Cluster{
		opts:     opts.withDefaults(),
		ln:       ln,
		node:     newNode(0, workers+1, nil),
		maxRanks: workers + 1,
		peers:    make([]*link, workers+1),
		claimed:  make([]bool, workers+1),
		stopCh:   make(chan struct{}),
	}, nil
}

// Addr returns the coordinator's listen address.
func (c *Cluster) Addr() string { return c.ln.Addr().String() }

// logf reports membership and retry events.
func (c *Cluster) logf(format string, args ...any) { c.opts.Logf(format, args...) }

// Accept waits for every worker to join and completes the hello/welcome
// handshake, assigning ranks in connection order; it then starts the
// background accept loop (rejoins) and the heartbeat loop.
func (c *Cluster) Accept() error {
	for r := 1; r < c.maxRanks; r++ {
		if tl, ok := c.ln.(*net.TCPListener); ok {
			tl.SetDeadline(time.Now().Add(handshakeTimeout))
		}
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("shard: waiting for worker %d/%d: %w", r, c.maxRanks-1, err)
		}
		l, err := c.admit(conn, r)
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.peers[r] = l
		c.mu.Unlock()
		go c.node.readLoop(l)
	}
	if tl, ok := c.ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	c.updateRankGauges()
	go c.acceptLoop()
	go c.heartbeatLoop()
	return nil
}

// admit runs the hello/welcome handshake on one inbound connection that
// will hold session rank r.
func (c *Cluster) admit(conn net.Conn, r int) (*link, error) {
	l := newLink(conn)
	l.peer = r
	if c.opts.Chaos != nil {
		l.chaos = c.opts.Chaos.link(r)
	}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	ft, _, err := readFrame(l.br)
	if err != nil || ft != ftHello {
		conn.Close()
		return nil, fmt.Errorf("shard: worker %d handshake: got frame %d, err %v", r, ft, err)
	}
	var welcome [8]byte
	putU32(welcome[0:4], uint32(r))
	putU32(welcome[4:8], uint32(c.maxRanks))
	if err := l.writeFrame(ftWelcome, welcome[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("shard: worker %d welcome: %w", r, err)
	}
	conn.SetDeadline(time.Time{})
	return l, nil
}

// acceptLoop admits replacement workers into vacated ranks for the
// cluster's whole life.
func (c *Cluster) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		go c.handleJoin(conn)
	}
}

// handleJoin re-handshakes one inbound connection into a vacated rank.
func (c *Cluster) handleJoin(conn net.Conn) {
	r := c.claimVacant()
	if r < 0 {
		l := newLink(conn)
		l.writeFrame(ftError, []byte("shard: cluster full"))
		conn.Close()
		return
	}
	l, err := c.admit(conn, r)
	if err != nil {
		c.mu.Lock()
		c.claimed[r] = false
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	c.peers[r] = l
	c.claimed[r] = false
	c.mu.Unlock()
	metClusterRejoins.Inc()
	c.updateRankGauges()
	c.logf("shard: rank %d rejoined", r)
	go c.node.readLoop(l)
}

// claimVacant reserves the lowest vacant session rank (-1 if none).
func (c *Cluster) claimVacant() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return -1
	}
	for r := 1; r < c.maxRanks; r++ {
		if c.peers[r] == nil && !c.claimed[r] {
			c.claimed[r] = true
			return r
		}
	}
	return -1
}

// evict removes rank r from the membership and tears its link down. The
// slot stays open for a rejoin. Idempotent per link: a second eviction
// of an already-vacated rank is a no-op.
func (c *Cluster) evict(r int, cause error) {
	if r <= 0 || r >= c.maxRanks {
		return
	}
	c.mu.Lock()
	l := c.peers[r]
	if l == nil {
		c.mu.Unlock()
		return
	}
	c.peers[r] = nil
	c.mu.Unlock()
	l.fail(cause)
	metClusterEvictions.Inc()
	c.updateRankGauges()
	c.logf("shard: evicted rank %d: %v", r, cause)
}

// isLive reports whether l still holds its session rank (it may have
// been evicted and even replaced since the attempt snapshotted it).
func (c *Cluster) isLive(l *link) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return l.peer > 0 && l.peer < c.maxRanks && c.peers[l.peer] == l
}

// LiveWorkers returns how many worker ranks currently hold live links.
func (c *Cluster) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := 0
	for r := 1; r < c.maxRanks; r++ {
		if c.peers[r] != nil {
			live++
		}
	}
	return live
}

// Err returns the poison error, if a protocol desync killed the cluster.
func (c *Cluster) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.poison
}

func (c *Cluster) poisonWith(err error) {
	c.mu.Lock()
	if c.poison == nil {
		c.poison = err
	}
	c.mu.Unlock()
}

func (c *Cluster) updateRankGauges() {
	live := c.LiveWorkers() + 1 // the coordinator counts itself
	metClusterRanksLive.Set(int64(live))
	metClusterRanksVacant.Set(int64(c.maxRanks - live))
}

// heartbeatLoop probes quiet worker links and evicts ranks whose links
// stay silent past the liveness deadline. Any inbound frame proves
// liveness; pings only flow when a link has been quiet for a full
// heartbeat interval, so the fault-free hot path carries no extra
// frames.
func (c *Cluster) heartbeatLoop() {
	hb := c.opts.Net.HeartbeatEvery
	live := c.opts.Net.Liveness
	step := hb / 2
	if step < 5*time.Millisecond {
		step = 5 * time.Millisecond
	}
	tick := time.NewTicker(step)
	defer tick.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case now := <-tick.C:
			c.mu.Lock()
			peers := make([]*link, len(c.peers))
			copy(peers, c.peers)
			c.mu.Unlock()
			nowNs := now.UnixNano()
			for r, l := range peers {
				if r == 0 || l == nil {
					continue
				}
				quiet := nowNs - l.lastRecv.Load()
				if quiet >= live.Nanoseconds() {
					c.evict(r, fmt.Errorf("shard: rank %d liveness expired (quiet for %v)", r, time.Duration(quiet)))
					continue
				}
				if quiet >= hb.Nanoseconds() && nowNs-l.lastPing >= hb.Nanoseconds() {
					l.lastPing = nowNs
					var p [8]byte
					putU64(p[:], uint64(nowNs))
					if err := l.writeFrame(ftPing, p[:]); err != nil {
						c.evict(r, fmt.Errorf("shard: ping rank %d: %w", r, err))
					}
				}
			}
		}
	}
}

// participants snapshots the live worker links in session-rank order.
func (c *Cluster) participants() []*link {
	c.mu.Lock()
	defer c.mu.Unlock()
	parts := make([]*link, 0, c.maxRanks-1)
	for r := 1; r < c.maxRanks; r++ {
		if c.peers[r] != nil {
			parts = append(parts, c.peers[r])
		}
	}
	return parts
}

// awaitCapacity waits up to grace for the live worker count to reach
// want (rejoins land asynchronously), polling cheaply.
func (c *Cluster) awaitCapacity(want int, grace time.Duration) {
	deadline := time.Now().Add(grace)
	for c.LiveWorkers() < want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
}

// run executes one job across the cluster: broadcast the spec, run fn
// (the coordinator's typed driver closure) with a tcp transport wired
// into the config, and unwind any protocol failure into an error.
//
// A failed attempt no longer poisons the cluster: the offending rank is
// evicted, the attempt is aborted on the survivors, and the job retries
// over the ranks that remain (rejoined replacements included) after a
// jittered backoff. A plain algorithm error from fn is deterministic
// from the shared spec — every rank computed the same one — so it
// returns immediately and the cluster stays usable. Only a fingerprint
// desync (ranks running divergent code) poisons the cluster.
func (c *Cluster) run(name string, params []uint64, cfg Config, g *graph.Graph, fn func(cfg Config) error) error {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	if err := c.Err(); err != nil {
		return fmt.Errorf("shard: cluster poisoned by earlier failure: %w", err)
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return fmt.Errorf("shard: cluster is closed")
	}
	cfg = cfg.withDefaults()
	cfg.transport = nil // never ship a transport; each rank plugs its own

	maxAttempts := 1 + c.opts.JobRetries
	backoff := c.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			metClusterRetries.Inc()
			c.logf("shard: retrying job %q (attempt %d/%d): %v", name, attempt+1, maxAttempts, lastErr)
			time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1)))
			if backoff *= 2; backoff > retryBackoffCap {
				backoff = retryBackoffCap
			}
			c.awaitCapacity(c.maxRanks-1, c.opts.RejoinGrace)
		}
		err, retryable := c.runAttempt(name, params, cfg, g, fn)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable {
			return err
		}
	}
	return fmt.Errorf("shard: job %q failed after %d attempts: %w", name, maxAttempts, lastErr)
}

// runAttempt runs one attempt of a job over the currently-live ranks.
// retryable reports whether a failure was a wire fault (eviction-based
// recovery is sound) as opposed to a deterministic algorithm error or a
// desync (which also poisons).
func (c *Cluster) runAttempt(name string, params []uint64, cfg Config, g *graph.Graph, fn func(cfg Config) error) (err error, retryable bool) {
	parts := c.participants()
	jobRanks := 1 + len(parts)
	jobLinks := make([]*link, jobRanks)
	for i, l := range parts {
		jobLinks[i+1] = l
	}
	c.nonce++
	nonce := c.nonce
	spec := jobSpec{Nonce: nonce, JobRank: 0, JobRanks: jobRanks, Name: name, Params: params, Cfg: cfg, G: g}
	payload, err := encodeJob(spec)
	if err != nil {
		return err, false
	}

	n := c.node
	n.clearAbort(0)
	// Belt and suspenders: the abort-ack protocol guarantees these
	// channels are quiet between attempts, but a frame that somehow
	// survived (a worker evicted mid-ack) must not greet the new attempt.
	for _, l := range jobLinks[1:] {
		drainColl(l)
		for {
			select {
			case <-l.abortNonces:
				continue
			default:
			}
			break
		}
	}
	n.startJob(nonce, 0, jobRanks, shardOwners(cfg.Shards, jobRanks), jobLinks, cfg.CollTimeout)
	watchdog := time.AfterFunc(cfg.JobTimeout, func() {
		n.requestAbort(fmt.Errorf("%w: job %q exceeded JobTimeout %v", errAborted, name, cfg.JobTimeout))
	})
	failed := false
	defer func() {
		watchdog.Stop()
		if r := recover(); r != nil {
			nf, ok := r.(netFailure)
			if !ok {
				panic(r)
			}
			failed = true
			err = nf.err
			retryable = !nf.desync
			if nf.desync {
				c.poisonWith(nf.err)
			}
			if nf.rank > 0 {
				c.evict(nf.rank, nf.err)
			}
		}
		if failed {
			c.abortSurvivors(nonce, jobLinks, cfg.CollTimeout)
		}
		n.detachExec()
	}()

	for r := 1; r < jobRanks; r++ {
		patchJobRank(payload, r)
		l := jobLinks[r]
		if err := l.writeFrame(ftJob, payload); err != nil {
			panic(netFailure{err: fmt.Errorf("shard: job send to rank %d: %w", l.peer, err), rank: l.peer})
		}
	}
	runCfg := cfg
	tcp := &tcpTransport{node: n}
	if c.opts.Chaos != nil {
		runCfg.transport = &chaosTransport{tcpTransport: tcp, plan: c.opts.Chaos}
	} else {
		runCfg.transport = tcp
	}
	return fn(runCfg), false
}

// abortSurvivors cancels the attempt named nonce on every rank of the
// attempt that is still live: broadcast ftAbort, await each rank's
// acknowledgement, then drain whatever stale collective frames the dead
// attempt left buffered. The ack is FIFO-ordered behind every frame the
// worker sent for the attempt, so post-drain the link is provably quiet
// — no frame of this attempt can reach the next one. Ranks that fail to
// acknowledge within the collective timeout are evicted.
func (c *Cluster) abortSurvivors(nonce uint64, jobLinks []*link, ackTO time.Duration) {
	c.node.detachExec() // disarm first: in-flight relays drop, not error
	var p [8]byte
	putU64(p[:], nonce)
	for _, l := range jobLinks[1:] {
		if !c.isLive(l) {
			continue
		}
		if err := l.writeFrame(ftAbort, p[:]); err != nil {
			c.evict(l.peer, fmt.Errorf("shard: abort send: %w", err))
		}
	}
	for _, l := range jobLinks[1:] {
		if !c.isLive(l) {
			continue
		}
		if !awaitAbortAck(l, nonce, ackTO) {
			c.evict(l.peer, fmt.Errorf("shard: abort ack timeout (nonce %d)", nonce))
			continue
		}
		drainColl(l)
	}
}

// awaitAbortAck waits for the worker on l to acknowledge abort nonce,
// skipping stale acks of earlier attempts.
func awaitAbortAck(l *link, nonce uint64, to time.Duration) bool {
	timer := time.NewTimer(to)
	defer timer.Stop()
	for {
		select {
		case got := <-l.abortNonces:
			if got >= nonce {
				return true
			}
		case <-l.errCh:
			return false
		case <-timer.C:
			return false
		}
	}
}

// BFS runs the distributed direction-optimizing BFS; results are
// bit-identical (per-vertex levels) to the in-process engine.
func (c *Cluster) BFS(g *graph.Graph, src int, cfg Config) (BFSResult, error) {
	var res BFSResult
	err := c.run("bfs", []uint64{uint64(int64(src))}, cfg, g, func(cfg Config) error {
		var err error
		res, err = BFS(g, src, cfg)
		return err
	})
	return res, err
}

// PageRank runs the distributed fixed-point PageRank; rank bits are
// identical to the in-process engine.
func (c *Cluster) PageRank(g *graph.Graph, damping float64, iterations int, cfg Config) (PRResult, error) {
	var res PRResult
	params := []uint64{math.Float64bits(damping), uint64(int64(iterations))}
	err := c.run("pagerank", params, cfg, g, func(cfg Config) error {
		var err error
		res, err = PageRank(g, damping, iterations, cfg)
		return err
	})
	return res, err
}

// Components runs the distributed min-label connected components.
func (c *Cluster) Components(g *graph.Graph, cfg Config) (CCResult, error) {
	var res CCResult
	err := c.run("cc", nil, cfg, g, func(cfg Config) error {
		var err error
		res, err = Components(g, cfg)
		return err
	})
	return res, err
}

// SSSP runs the distributed delta-stepping SSSP; distance bits are
// identical to the in-process engine.
func (c *Cluster) SSSP(g *graph.Graph, src int, delta uint64, cfg Config) (SSSPResult, error) {
	var res SSSPResult
	err := c.run("sssp", []uint64{uint64(int64(src)), delta}, cfg, g, func(cfg Config) error {
		var err error
		res, err = SSSP(g, src, delta, cfg)
		return err
	})
	return res, err
}

// MST runs the distributed Borůvka MST.
func (c *Cluster) MST(g *graph.Graph, cfg Config) (MSTResult, error) {
	var res MSTResult
	err := c.run("mst", nil, cfg, g, func(cfg Config) error {
		var err error
		res, err = MST(g, cfg)
		return err
	})
	return res, err
}

// Coloring runs the distributed Jones–Plassmann coloring.
func (c *Cluster) Coloring(g *graph.Graph, seed uint64, cfg Config) (ColoringResult, error) {
	var res ColoringResult
	err := c.run("coloring", []uint64{seed}, cfg, g, func(cfg Config) error {
		var err error
		res, err = Coloring(g, seed, cfg)
		return err
	})
	return res, err
}

// Close releases the cluster: workers get a clean bye (their JoinCluster
// returns nil) and every connection closes.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	peers := make([]*link, len(c.peers))
	copy(peers, c.peers)
	c.mu.Unlock()
	close(c.stopCh)
	for r := 1; r < c.maxRanks; r++ {
		if l := peers[r]; l != nil {
			l.writeFrame(ftBye, nil)
			l.conn.Close()
		}
	}
	return c.ln.Close()
}

// JoinCluster dials a coordinator and serves jobs until it says bye
// (returning nil) or the session fails (returning the failure). Each job
// runs the same SPMD driver the coordinator runs, with this process's
// rank of the shard space. The dial itself retries with bounded backoff
// (see dialCoordinator), so a coordinator that is still binding its
// listener is tolerated; handshake and session failures do not retry —
// callers that want a rejoin loop wrap JoinCluster (aam-worker -rejoin).
func JoinCluster(addr string) error {
	return joinCluster(addr, joinDialAttempts)
}

// joinCluster is JoinCluster with an explicit dial-retry budget (tests
// use a small one so teardown never waits out the full dial window).
func joinCluster(addr string, dialAttempts int) error {
	conn, err := dialCoordinator(addr, dialAttempts)
	if err != nil {
		return err
	}
	l := newLink(conn)
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := l.writeFrame(ftHello, nil); err != nil {
		conn.Close()
		return err
	}
	ft, payload, err := readFrame(l.br)
	if err != nil || ft != ftWelcome || len(payload) != 8 {
		conn.Close()
		return fmt.Errorf("shard: join handshake: frame %d (%d bytes), err %v", ft, len(payload), err)
	}
	conn.SetDeadline(time.Time{})
	rank := int(getU32(payload[0:4]))
	nranks := int(getU32(payload[4:8]))
	if rank < 1 || rank >= nranks {
		conn.Close()
		return fmt.Errorf("shard: coordinator assigned rank %d of %d", rank, nranks)
	}
	n := newNode(rank, nranks, []*link{l})
	go n.readLoop(l)
	return n.serveJobs(l)
}

// serveJobs is the worker's main loop: run jobs as they arrive and
// acknowledge aborts. A job's algorithm error is deterministic from the
// spec — the coordinator computed the same one — so the worker keeps
// serving; an abort cancels the attempt but preserves the session;
// protocol failures end the session (a rejoin loop re-handshakes).
func (n *node) serveJobs(l *link) error {
	for {
		select {
		case payload := <-l.jobCh:
			if err, fatal := n.runJob(payload); fatal {
				l.writeFrame(ftError, []byte(err.Error()))
				l.conn.Close()
				return err
			}
			n.ackAborts(l)
		case nonce := <-l.abortNonces:
			n.finishAbort(l, nonce)
		case <-l.byeCh:
			return nil
		case err := <-l.errCh:
			return err
		}
	}
}

// ackAborts drains pending abort requests after a job unwound.
func (n *node) ackAborts(l *link) {
	for {
		select {
		case nonce := <-l.abortNonces:
			n.finishAbort(l, nonce)
		default:
			return
		}
	}
}

// finishAbort completes one abort on the worker side: the attempt has
// unwound (or never ran), so drain its stale collective frames, clear
// the abort latch and acknowledge. The coordinator sends nothing between
// its ftAbort and our ack, so the drain leaves the link provably quiet.
func (n *node) finishAbort(l *link, nonce uint64) {
	drainColl(l)
	n.clearAbort(nonce)
	var p [8]byte
	putU64(p[:], nonce)
	l.writeFrame(ftAbort, p[:]) // on error the read loop fails the link
}

// runJob decodes and executes one job attempt on this rank.
func (n *node) runJob(payload []byte) (err error, fatal bool) {
	spec, err := decodeJob(payload)
	if err != nil {
		return err, true
	}
	if n.jobFence(spec.Nonce) {
		// A stale attempt: either the coordinator aborted it (possibly
		// before we even started it) and has moved on, or the frame is a
		// duplicate of a job we already ran.
		return nil, false
	}
	runner := jobRunners[spec.Name]
	if runner == nil {
		return fmt.Errorf("shard: unknown job %q", spec.Name), true
	}
	if spec.JobRank < 1 || spec.JobRanks < 2 || spec.JobRank >= spec.JobRanks || spec.JobRanks > n.nranks {
		return fmt.Errorf("shard: job places this rank at %d of %d", spec.JobRank, spec.JobRanks), true
	}
	defer func() {
		if r := recover(); r != nil {
			if nf, ok := r.(netFailure); ok {
				err = nf.err
				// A deliberate abort preserves the session: the attempt is
				// dead cluster-wide and the coordinator awaits our ack.
				fatal = !nf.abort
			} else {
				err = fmt.Errorf("shard: job %q panicked: %v", spec.Name, r)
				fatal = true
			}
		}
		n.detachExec()
	}()
	cfg := spec.Cfg // already normalized by the coordinator's run()
	cfg.transport = &tcpTransport{node: n}
	n.startJob(spec.Nonce, spec.JobRank, spec.JobRanks, shardOwners(cfg.Shards, spec.JobRanks), nil, cfg.CollTimeout)
	return runner(spec.G, spec.Params, cfg), false
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
