package algo

import (
	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

// SSSP computes single-source shortest paths by asynchronous chaotic
// relaxation (the paper lists SSSP next to BFS as a marking-style FF&MF
// algorithm, §5.4.1): the relax operator lowers a vertex's distance and,
// when it improves it, OnDone spawns relaxations of the out-neighbors.
// Termination is the AAM runtime's quiescence protocol — there are no
// level barriers.
//
// Distances are stored as dist+1 (0 = infinity). The graph must carry
// weights.
type SSSP struct {
	G    *graph.Graph
	Part graph.Partition

	rt      *aam.Runtime
	relaxOp int

	L        int
	distBase int
}

// NewSSSP prepares an SSSP run over g distributed across nodes.
func NewSSSP(g *graph.Graph, nodes int) *SSSP {
	if g.Weights == nil {
		panic("algo: SSSP needs edge weights")
	}
	part := graph.NewPartition(g.N, nodes)
	s := &SSSP{G: g, Part: part, L: part.MaxLocal()}
	s.distBase = 0

	s.rt = aam.NewRuntime()
	s.relaxOp = s.rt.Register(&aam.Op{
		Name: "sssp-relax",
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			addr := s.distBase + v
			cur := tx.Read(addr)
			if cur != 0 && cur <= arg+1 {
				return 0, true // no improvement: May-Fail no-op
			}
			tx.Write(addr, arg+1)
			return arg, false
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			addr := s.distBase + v
			for {
				cur := ctx.Load(addr)
				if cur != 0 && cur <= arg+1 {
					return 0, true
				}
				if ctx.CAS(addr, cur, arg+1) {
					return arg, false
				}
			}
		},
		OnDone: func(e *aam.Engine, vGlobal int, ret uint64, fail bool) {
			if fail {
				return
			}
			// Chain: relax all out-neighbors with the improved value.
			ctx := e.Ctx()
			ws := s.G.EdgeWeights(vGlobal)
			neigh := s.G.Neighbors(vGlobal)
			ctx.Compute(vtime.Time(len(neigh)/2+1) * ctx.Profile().LoadCost)
			for i, w := range neigh {
				e.Spawn(s.relaxOp, int(w), ret+uint64(ws[i]))
			}
		},
	})
	return s
}

// Handlers splices the runtime handlers into existing.
func (s *SSSP) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	return s.rt.Handlers(existing)
}

// MemWords returns the node memory size SSSP needs.
func (s *SSSP) MemWords() int { return s.L + 64 + s.L }

// Body returns the SPMD body relaxing from src.
func (s *SSSP) Body(src int, engineCfg aam.Config) func(ctx exec.Context) {
	engineCfg.Part = s.Part
	engineCfg.LockBase = s.L + 64
	return func(ctx exec.Context) { s.run(ctx, src, engineCfg) }
}

func (s *SSSP) run(ctx exec.Context, src int, engineCfg aam.Config) {
	eng := aam.NewEngine(s.rt, ctx, engineCfg)
	if ctx.GlobalID() == 0 {
		eng.Spawn(s.relaxOp, src, 0)
	}
	ctx.Barrier()
	eng.Drain()
}

// Dists gathers the distances (MaxUint64 = unreachable).
func (s *SSSP) Dists(m exec.Machine) []uint64 {
	out := make([]uint64, s.G.N)
	for v := range out {
		node := s.Part.Owner(v)
		raw := m.Mem(node)[s.distBase+s.Part.Local(v)]
		if raw == 0 {
			out[v] = ^uint64(0)
		} else {
			out[v] = raw - 1
		}
	}
	return out
}
