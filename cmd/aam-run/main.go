// Command aam-run executes one graph algorithm through the AAM runtime on
// a generated or loaded graph and reports timing plus execution counters.
//
// Usage:
//
//	aam-run -algo bfs -graph kron -scale 14 -deg 8 -machine bgq -m 80
//	aam-run -algo pagerank -graph er -n 100000 -p 0.0005 -nodes 8 -c 256
//	aam-run -algo mst -load edges.txt -mech lock
//	aam-run -algo bfs -engine gblas -graph kron -scale 14
//	aam-run -algo cc -engine shard -shards 8
//
// Algorithms: bfs, pagerank, sssp, mst, coloring, cc, stconn, maxflow.
// Engines: aam (default), shard (sharded executor), gblas (masked-SpMV
// engine; bfs, sssp and pagerank only).
// Graphs: kron (-scale, -deg), er (-n, -p), road (-n), ba (-n, -deg),
// community (-n, -deg), or -load <edge-list file>.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"aamgo"
)

func main() {
	var (
		algoName  = flag.String("algo", "bfs", "bfs|pagerank|sssp|mst|coloring|cc|stconn|maxflow")
		graphKind = flag.String("graph", "kron", "kron|er|road|ba|community")
		load      = flag.String("load", "", "edge-list file (overrides -graph)")
		scale     = flag.Int("scale", 12, "kron: log2 vertex count")
		deg       = flag.Int("deg", 8, "kron/ba/community: average degree")
		n         = flag.Int("n", 4096, "er/road/ba/community: vertex count")
		p         = flag.Float64("p", 0.002, "er: edge probability")
		seed      = flag.Int64("seed", 1, "generator and machine seed")

		engine   = flag.String("engine", "", "aam|shard|gblas (empty = aam, or shard when -shards > 1)")
		shards   = flag.Int("shards", 0, "shard count for the shard engine")
		rt       = flag.String("runtime", "", "sim|native machine runtime (default sim)")
		backend  = flag.String("backend", "", "deprecated alias for -runtime")
		machine  = flag.String("machine", "has-c", "has-c|has-p|bgq")
		variant  = flag.String("htm", "", "HTM variant (rtm|hle|short|long)")
		nodes    = flag.Int("nodes", 1, "machine nodes")
		threads  = flag.Int("threads", 0, "threads per node (0 = machine max)")
		mech     = flag.String("mech", "htm", "htm|atomic|lock|occ|flatcomb")
		m        = flag.Int("m", 16, "coarsening factor M")
		c        = flag.Int("c", 64, "coalescing factor C")
		autoM    = flag.Bool("autom", false, "online M selection")
		predictM = flag.Bool("predictm", false, "sampling-based M prediction (§7)")
		lower    = flag.Bool("lower", false, "lower single-vertex transactions to atomics (§7)")

		src  = flag.Int("src", -1, "bfs/sssp source (-1 = max degree)")
		dst  = flag.Int("dst", 0, "stconn target")
		iter = flag.Int("iters", 10, "pagerank iterations")
		damp = flag.Float64("damping", 0.85, "pagerank damping")
	)
	flag.Parse()

	g, err := buildGraph(*load, *graphKind, *scale, *deg, *n, *p, *seed, *algoName)
	if err != nil {
		fail(err)
	}

	mechanism := aamgo.HTM
	switch *mech {
	case "htm":
	case "atomic":
		mechanism = aamgo.Atomic
	case "lock":
		mechanism = aamgo.Lock
	case "occ":
		mechanism = aamgo.Optimistic
	case "flatcomb":
		mechanism = aamgo.FlatCombining
	default:
		fail(fmt.Errorf("unknown mechanism %q", *mech))
	}
	if *rt == "" {
		*rt = *backend
	}
	if *rt == "" {
		*rt = "sim"
	}
	cfg := aamgo.Config{
		Engine: *engine, Shards: *shards,
		Runtime: *rt, Machine: *machine, HTMVariant: *variant,
		Nodes: *nodes, Threads: *threads, Mechanism: mechanism,
		M: *m, C: *c, AutoM: *autoM, PredictM: *predictM,
		LowerSingle: *lower, Seed: *seed,
	}

	source := *src
	if source < 0 {
		source = maxDeg(g)
	}

	fmt.Printf("graph: %d vertices, %d directed edges, d̄=%.1f, max deg %d\n",
		g.N, g.NumEdges(), g.AvgDegree(), g.MaxDegree())

	var ri aamgo.RunInfo
	switch *algoName {
	case "bfs":
		res, err := aamgo.BFS(g, source, cfg)
		if err != nil {
			fail(err)
		}
		ri = res.RunInfo
		visited := 0
		for _, pr := range res.Parents {
			if pr >= 0 {
				visited++
			}
		}
		fmt.Printf("bfs: visited %d vertices from source %d\n", visited, source)

	case "pagerank":
		ranks, info, err := aamgo.PageRank(g, *damp, *iter, cfg)
		if err != nil {
			fail(err)
		}
		ri = info
		best, bestR := 0, 0.0
		for v, r := range ranks {
			if r > bestR {
				best, bestR = v, r
			}
		}
		fmt.Printf("pagerank: top vertex %d with rank %.6f\n", best, bestR)

	case "sssp":
		dists, info, err := aamgo.SSSP(g, source, cfg)
		if err != nil {
			fail(err)
		}
		ri = info
		reach, far := 0, uint64(0)
		for _, d := range dists {
			if d != math.MaxUint64 {
				reach++
				if d > far {
					far = d
				}
			}
		}
		fmt.Printf("sssp: %d reachable, eccentricity %d\n", reach, far)

	case "mst":
		w, comps, info, err := aamgo.MST(g, cfg)
		if err != nil {
			fail(err)
		}
		ri = info
		fmt.Printf("mst: forest weight %d, %d components\n", w, countDistinct(comps))

	case "coloring":
		colors, used, info, err := aamgo.Coloring(g, cfg)
		if err != nil {
			fail(err)
		}
		ri = info
		_ = colors
		fmt.Printf("coloring: %d colors\n", used)

	case "cc":
		labels, info, err := aamgo.Components(g, cfg)
		if err != nil {
			fail(err)
		}
		ri = info
		fmt.Printf("cc: %d components\n", countDistinct(labels))

	case "maxflow":
		flow, info, err := aamgo.MaxFlow(g, source, *dst, cfg)
		if err != nil {
			fail(err)
		}
		ri = info
		fmt.Printf("maxflow: %d -> %d carries %d\n", source, *dst, flow)

	case "stconn":
		ok, info, err := aamgo.Connected(g, source, *dst, cfg)
		if err != nil {
			fail(err)
		}
		ri = info
		fmt.Printf("stconn: %d and %d connected = %v\n", source, *dst, ok)

	default:
		fail(fmt.Errorf("unknown algorithm %q", *algoName))
	}

	s := ri.Stats
	fmt.Printf("time: %v (%s runtime)\n", ri.Elapsed, *rt)
	fmt.Printf("ops: %d operators, %d transactions (%d attempts, %d aborts, %d serialized), %d atomics, %d messages\n",
		s.OpsExecuted, s.TxStarted, s.TxAttempts, s.TotalAborts(), s.TxSerialized, s.AtomicOps, s.MsgsSent)
}

func buildGraph(load, kind string, scale, deg, n int, p float64, seed int64, algoName string) (*aamgo.Graph, error) {
	var g *aamgo.Graph
	switch {
	case load != "":
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err = aamgo.ReadAuto(f)
		if err != nil {
			return nil, err
		}
	case kind == "kron":
		g = aamgo.Kronecker(scale, deg, seed)
	case kind == "er":
		g = aamgo.ErdosRenyi(n, p, seed)
	case kind == "road":
		side := intSqrt(n)
		g = aamgo.RoadGrid(side, side, 0.1, seed)
	case kind == "ba":
		g = aamgo.BarabasiAlbert(n, deg, seed)
	case kind == "community":
		g = aamgo.Community(n, 64, deg, 0.05, seed)
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
	// Weighted algorithms need weights; re-build with a weight function.
	if (algoName == "mst" || algoName == "sssp") && g.Weights == nil {
		b := aamgo.NewBuilder(g.N).WithWeights(aamgo.SymmetricWeight(uint64(seed) + 3))
		for u := 0; u < g.N; u++ {
			for _, w := range g.Neighbors(u) {
				if int32(u) <= w {
					b.AddEdge(int32(u), w)
				}
			}
		}
		g = b.Dedup().Build()
	}
	return g, nil
}

func maxDeg(g *aamgo.Graph) int {
	best, bd := 0, -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > bd {
			best, bd = v, d
		}
	}
	return best
}

func countDistinct(labels []int32) int {
	seen := make(map[int32]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

func intSqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "aam-run:", err)
	os.Exit(1)
}
