package main

import (
	"strings"
	"testing"

	"aamgo/internal/bench"
)

func report(exps map[string]bench.CIExperiment) bench.CIReport {
	return bench.CIReport{Schema: bench.CISchema, Seed: 42, Experiments: exps}
}

func runDiff(t *testing.T, base, cur bench.CIReport) (string, int, int) {
	t.Helper()
	var sb strings.Builder
	regressions, compared := diff(&sb, base, cur, 0.20)
	return sb.String(), regressions, compared
}

func TestDiffPassesOnIdenticalSets(t *testing.T) {
	r := report(map[string]bench.CIExperiment{
		"sharded": {Metrics: map[string]float64{
			"bfs.remote_units.s4": 1000,
			"bfs.tput.keps.s4":    50,
		}},
	})
	out, regressions, compared := runDiff(t, r, r)
	if regressions != 0 || compared != 2 {
		t.Fatalf("regressions=%d compared=%d\n%s", regressions, compared, out)
	}
}

// TestDiffNewMetricNotGated pins the forward direction of asymmetric
// metric sets: a metric (or experiment) present only in the current run —
// a freshly added scenario whose baseline has not landed yet — is
// reported as new and does not fail the gate.
func TestDiffNewMetricNotGated(t *testing.T) {
	base := report(map[string]bench.CIExperiment{
		"sharded": {Metrics: map[string]float64{"bfs.remote_units.s4": 1000}},
	})
	cur := report(map[string]bench.CIExperiment{
		"sharded": {Metrics: map[string]float64{
			"bfs.remote_units.s4":  1000,
			"sssp.remote_units.s4": 777, // new metric
		}},
		"sharded-irregular": { // new experiment
			Metrics: map[string]float64{"mst.remote_units.s4": 5}},
	})
	out, regressions, compared := runDiff(t, base, cur)
	if regressions != 0 {
		t.Fatalf("new metrics must not gate; got %d regressions:\n%s", regressions, out)
	}
	if compared != 1 {
		t.Fatalf("compared = %d, want 1\n%s", compared, out)
	}
	for _, frag := range []string{
		"note sharded/sssp.remote_units.s4: new metric, not gated",
		"note sharded-irregular: new experiment, not gated",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output lacks %q:\n%s", frag, out)
		}
	}
}

// TestDiffMissingBaselineMetricFails pins the reverse direction: a metric
// or experiment the baseline holds but the current run no longer produces
// is lost gate coverage and must fail.
func TestDiffMissingBaselineMetricFails(t *testing.T) {
	base := report(map[string]bench.CIExperiment{
		"sharded": {Metrics: map[string]float64{
			"bfs.remote_units.s4": 1000,
			"cc.remote_units.s4":  2000,
		}},
	})
	cur := report(map[string]bench.CIExperiment{
		"sharded": {Metrics: map[string]float64{"bfs.remote_units.s4": 1000}},
	})
	out, regressions, _ := runDiff(t, base, cur)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", regressions, out)
	}
	if !strings.Contains(out, "FAIL sharded/cc.remote_units.s4: baseline metric missing") {
		t.Fatalf("missing-metric failure not reported:\n%s", out)
	}

	// Whole experiment missing from the current run.
	out, regressions, _ = runDiff(t, base, report(map[string]bench.CIExperiment{}))
	if regressions != 1 || !strings.Contains(out, "FAIL sharded: baseline experiment missing") {
		t.Fatalf("missing-experiment failure not reported (regressions=%d):\n%s", regressions, out)
	}
}

func TestDiffGatesValues(t *testing.T) {
	base := report(map[string]bench.CIExperiment{
		"sharded": {Metrics: map[string]float64{
			"bfs.remote_units.s4": 1000,
			"bfs.tput.keps.s4":    100,
		}},
	})
	// Throughput above the floor and exact counts pass.
	cur := report(map[string]bench.CIExperiment{
		"sharded": {Metrics: map[string]float64{
			"bfs.remote_units.s4": 1000,
			"bfs.tput.keps.s4":    85, // floor is 80
		}},
	})
	if out, regressions, _ := runDiff(t, base, cur); regressions != 0 {
		t.Fatalf("within-threshold run failed:\n%s", out)
	}
	// Throughput below the floor fails; count drift fails in both
	// directions.
	for _, m := range []map[string]float64{
		{"bfs.remote_units.s4": 1000, "bfs.tput.keps.s4": 79},
		{"bfs.remote_units.s4": 999, "bfs.tput.keps.s4": 100},
		{"bfs.remote_units.s4": 1001, "bfs.tput.keps.s4": 100},
	} {
		cur := report(map[string]bench.CIExperiment{"sharded": {Metrics: m}})
		if out, regressions, _ := runDiff(t, base, cur); regressions != 1 {
			t.Fatalf("metrics %v: regressions != 1:\n%s", m, out)
		}
	}
	// Latency metrics gate as ceilings: under (or within threshold of) the
	// baseline passes, above the ceiling fails.
	latBase := report(map[string]bench.CIExperiment{
		"serving": {Metrics: map[string]float64{"serving.lat.p99us.bfs": 100}},
	})
	for _, c := range []struct {
		v    float64
		want int
	}{
		{v: 50, want: 0},  // improvement: never gates
		{v: 119, want: 0}, // within the +20% ceiling
		{v: 121, want: 1}, // over the ceiling
	} {
		cur := report(map[string]bench.CIExperiment{
			"serving": {Metrics: map[string]float64{"serving.lat.p99us.bfs": c.v}},
		})
		if out, regressions, _ := runDiff(t, latBase, cur); regressions != c.want {
			t.Fatalf("latency %v: regressions = %d, want %d:\n%s", c.v, regressions, c.want, out)
		}
	}

	// Failed shape checks always gate.
	cur = report(map[string]bench.CIExperiment{
		"sharded": {ChecksFailed: 2, Metrics: map[string]float64{
			"bfs.remote_units.s4": 1000, "bfs.tput.keps.s4": 100,
		}},
	})
	if out, regressions, _ := runDiff(t, base, cur); regressions != 1 {
		t.Fatalf("failed shape checks did not gate:\n%s", out)
	}
}
