// Package dyn is the dynamic-graph subsystem: a mutable, concurrently
// updatable graph layered on the static CSR representation of
// internal/graph and the AAM runtime of internal/aam.
//
// The design follows the paper's pitch — fine-grained concurrent updates to
// an irregular structure, isolated by (emulated) hardware transactions or
// one of the alternative mechanisms — and extends it with the machinery a
// long-lived service needs:
//
//   - Graph wraps a frozen CSR "base" with per-vertex adjacency deltas
//     (added and deleted arcs). Mutations are applied in transactional
//     batches; when the deltas grow past a configurable fraction of the
//     base, the graph is compacted back into a fresh CSR.
//   - Batches of AddEdge/RemoveEdge mutations execute as AAM operators on
//     an abstract machine, so they run under all five isolation mechanisms
//     (HTM, atomics, locks, optimistic locking, flat combining) with
//     abort/retry statistics flowing into internal/stats. Every edge
//     operator reads and writes the version words of both endpoints,
//     reproducing the conflict structure of concurrent adjacency updates.
//   - Readers never block writers: Snapshot returns an immutable
//     epoch-stamped view built with per-vertex copy-on-write, and Freeze
//     materializes it into a plain *graph.Graph so the static analytics in
//     internal/algo run unchanged against a consistent cut of the graph.
//   - Connected components are maintained incrementally: edge inserts
//     union a disjoint-set forest in O(α), deletions mark it dirty and the
//     next query recomputes from the current snapshot.
//
// Graphs are undirected and unweighted (each logical edge is stored as two
// arcs), matching the Graph500-style workloads of the paper's evaluation.
package dyn

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"aamgo/internal/aam"
	"aamgo/internal/graph"
	"aamgo/internal/obs"
	"aamgo/internal/stats"
)

// Kind discriminates mutations.
type Kind uint8

const (
	// KindAddEdge inserts an undirected edge {U, V}. It fails (is
	// rejected) when the edge already exists in the pre-batch snapshot.
	KindAddEdge Kind = iota
	// KindRemoveEdge deletes an undirected edge {U, V} including every
	// parallel copy. It fails when the edge does not exist in the
	// pre-batch snapshot.
	KindRemoveEdge
	// KindAddVertex appends one isolated vertex; U and V are ignored.
	// Vertex additions always succeed and are sequenced before the edge
	// mutations of the same batch, so a batch may wire up the vertices it
	// creates.
	KindAddVertex
)

// String names the mutation kind.
func (k Kind) String() string {
	switch k {
	case KindAddEdge:
		return "add-edge"
	case KindRemoveEdge:
		return "remove-edge"
	case KindAddVertex:
		return "add-vertex"
	default:
		return "kind(?)"
	}
}

// Mutation is one element of a transactional batch.
type Mutation struct {
	Kind Kind
	U, V int32
}

// AddEdge returns an edge-insert mutation.
func AddEdge(u, v int32) Mutation { return Mutation{Kind: KindAddEdge, U: u, V: v} }

// RemoveEdge returns an edge-delete mutation.
func RemoveEdge(u, v int32) Mutation { return Mutation{Kind: KindRemoveEdge, U: u, V: v} }

// AddVertex returns a vertex-append mutation.
func AddVertex() Mutation { return Mutation{Kind: KindAddVertex} }

// Snapshot is an immutable epoch-stamped view of the graph: the base CSR
// plus per-vertex add/delete deltas. Snapshots are safe for concurrent use
// and stay valid (and unchanged) forever; they pin their backing memory.
type Snapshot struct {
	epoch uint64
	n     int
	base  *graph.Graph
	// adds[v] lists arcs v→w inserted since the base was built; dels[v]
	// lists base neighbors deleted since (each entry removes every
	// parallel copy). Both are nil for untouched vertices. Vertices
	// v >= base.N have only adds.
	adds [][]int32
	dels [][]int32

	arcs    int64 // exact arc count of the merged view
	addArcs int64 // arcs carried by adds
	delArcs int64 // base arcs suppressed by dels

	// mat is the owning graph's shared materialization state (incremental
	// freeze arena + epoch journal); nil only for zero-value snapshots.
	mat *matState

	frozen atomic.Pointer[graph.Graph]
}

// Epoch returns the snapshot's epoch (one per applied batch).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// N returns the number of vertices.
func (s *Snapshot) N() int { return s.n }

// NumArcs returns the number of stored arcs (2× logical edges).
func (s *Snapshot) NumArcs() int64 { return s.arcs }

// DeltaArcs returns how many arcs live outside the base CSR (inserted plus
// deleted); compaction triggers on this.
func (s *Snapshot) DeltaArcs() int64 { return s.addArcs + s.delArcs }

// containsArc / countArc do linear scans; they serve the short per-vertex
// delta lists (adds/dels), which are unsorted and usually tiny.
func containsArc(list []int32, w int32) bool {
	for _, x := range list {
		if x == w {
			return true
		}
	}
	return false
}

func countArc(list []int32, w int32) int64 {
	var c int64
	for _, x := range list {
		if x == w {
			c++
		}
	}
	return c
}

// sortedContainsArc / sortedCountArc answer membership against the sorted
// base CSR adjacency by binary search — O(log d) instead of O(d), the
// difference that matters on high-degree (power-law hub) vertices. New and
// compact enforce the per-vertex sort invariant on every base.
func sortedContainsArc(list []int32, w int32) bool {
	_, ok := slices.BinarySearch(list, w)
	return ok
}

func sortedCountArc(list []int32, w int32) int64 {
	lo, ok := slices.BinarySearch(list, w)
	if !ok {
		return 0
	}
	hi := lo + 1
	for hi < len(list) && list[hi] == w { // parallel copies sit adjacent
		hi++
	}
	return int64(hi - lo)
}

// HasEdge reports whether the arc u→v exists in this view.
func (s *Snapshot) HasEdge(u, v int32) bool {
	if int(u) < 0 || int(u) >= s.n || int(v) < 0 || int(v) >= s.n {
		return false
	}
	if containsArc(s.adds[u], v) {
		return true
	}
	if int(u) < s.base.N && !containsArc(s.dels[u], v) {
		return sortedContainsArc(s.base.Neighbors(int(u)), v)
	}
	return false
}

// Degree returns the merged out-degree of v.
func (s *Snapshot) Degree(v int) int {
	d := int64(len(s.adds[v]))
	if v < s.base.N {
		d += int64(s.base.Degree(v))
		for _, w := range s.dels[v] {
			d -= sortedCountArc(s.base.Neighbors(v), w)
		}
	}
	return int(d)
}

// AppendNeighbors appends the merged adjacency of v to dst and returns the
// extended slice (allocation-free when dst has capacity).
func (s *Snapshot) AppendNeighbors(dst []int32, v int) []int32 {
	if v < s.base.N {
		del := s.dels[v]
		for _, w := range s.base.Neighbors(v) {
			if !containsArc(del, w) {
				dst = append(dst, w)
			}
		}
	}
	return append(dst, s.adds[v]...)
}

// Freeze materializes the snapshot as a static CSR graph usable with every
// algorithm in internal/algo. The result is cached on the snapshot, so
// repeated freezes of one epoch are free; when the snapshot carries no
// deltas the base is returned directly.
//
// Materialization is incremental: the owning graph keeps the last frozen
// view plus a per-epoch journal of touched vertices, and freezing a later
// epoch splices only the delta-carrying vertices into a shared append-only
// adjacency arena (copy-on-write segments — published views are never
// mutated). Freeze cost after k mutations is therefore proportional to the
// touched adjacency, not to the whole graph; periodic compaction rebuilds
// a clean flat base and resets the arena. The frozen graph may use the
// patched layout (graph.Graph with Ends); all iteration-based consumers
// handle it transparently.
func (s *Snapshot) Freeze() *graph.Graph {
	if g := s.frozen.Load(); g != nil {
		return g
	}
	var g *graph.Graph
	if s.mat != nil {
		g = s.mat.freeze(s)
	} else {
		g = s.materialize()
	}
	s.frozen.CompareAndSwap(nil, g)
	return s.frozen.Load()
}

// FullMaterialize rebuilds the snapshot as a flat CSR from scratch — the
// pre-incremental freeze path, kept as the equivalence oracle and the
// compaction builder. It bypasses the snapshot's frozen cache and the
// incremental arena.
func (s *Snapshot) FullMaterialize() *graph.Graph { return s.materialize() }

func (s *Snapshot) materialize() *graph.Graph {
	if s.DeltaArcs() == 0 && s.n == s.base.N {
		return s.base
	}
	adj := make([]int32, 0, s.arcs)
	offsets := make([]int64, s.n+1)
	for v := 0; v < s.n; v++ {
		adj = s.AppendNeighbors(adj, v)
		offsets[v+1] = int64(len(adj))
	}
	return &graph.Graph{N: s.n, Offsets: offsets, Adj: adj}
}

// Graph is the mutable dynamic graph. All mutation goes through Apply;
// readers obtain immutable Snapshots and never block writers. A Graph is
// safe for concurrent use by any number of readers and writers (writers
// serialize on an internal lock; the transactional machine inside one
// batch provides the fine-grained concurrency).
type Graph struct {
	mu  sync.Mutex // serializes writers and guards uf/ccDirty/cum
	cur atomic.Pointer[Snapshot]

	mat *matState // shared with every snapshot; has its own lock

	uf      *unionFind
	ccDirty bool

	// walHook, when set, is invoked under mu immediately after each batch
	// publishes — appends therefore arrive in strict epoch order. The wait
	// closure it returns runs after mu is released, so concurrent Apply
	// callers block on durability together (group commit) without
	// serializing the fsync behind the writer lock.
	walHook WALHook

	cum CumStats

	// histApply records Apply wall time (validation + transactional phase
	// + fold + publish). The freeze-latency histograms live on mat. All
	// three record from the graph's birth and surface through
	// RegisterMetrics when a server mounts the graph.
	histApply *obs.Histogram
}

// numMechs is the isolation-mechanism count (MechHTM..MechFlatCombining).
const numMechs = int(aam.MechFlatCombining) + 1

// MechStats attributes transactional outcomes to the isolation mechanism
// the batch ran under — the per-mechanism abort/retry rates of the
// paper's evaluation, as live series instead of a bench artifact.
type MechStats struct {
	Batches    uint64
	Aborts     uint64 // hardware aborts (all reasons but explicit)
	Retries    uint64
	Serialized uint64
}

// CumStats aggregates the lifetime counters of one Graph.
type CumStats struct {
	Batches     uint64
	Applied     uint64 // net mutations applied (incl. vertex adds)
	Rejected    uint64 // failed May-Fail operators (duplicate add / missing remove)
	Redundant   uint64 // committed operators that lost an intra-batch duplicate race
	Compactions uint64
	Epoch       uint64
	// Tx aggregates the machine counters of every batch: transactions,
	// aborts by reason, retries, serializations, atomics, lock
	// acquisitions, flat-combined operators.
	Tx stats.Total
	// PerMech splits abort/retry/serialization outcomes by the isolation
	// mechanism each batch ran under.
	PerMech [numMechs]MechStats
}

// CommitInfo describes one published batch to the durability hook: the
// epoch the batch produced, the post-batch vertex and arc counts (recorded
// alongside the mutations so recovery can verify each replayed step), and
// the original batch. Batch aliases the caller's slice and is only valid
// for the duration of the hook call — hooks must encode or copy it before
// returning.
type CommitInfo struct {
	Epoch uint64
	N     int
	Arcs  int64
	Batch []Mutation
}

// WALHook is the durability hook a write-ahead log installs via SetWALHook.
// It is called under the writer lock after every successful Apply (epochs
// arrive strictly ordered, one per batch, including batches that applied
// nothing — epoch continuity is what recovery verifies). The returned wait
// closure, if non-nil, is invoked by Apply after the lock is released and
// blocks until the batch is durable; its error surfaces from Apply wrapped
// in ErrDurability.
type WALHook func(ci CommitInfo) (wait func() error)

// ErrDurability marks Apply errors raised after the batch was published
// in memory but the durability hook failed to make it stable. The
// in-memory state includes the batch; a crash-recovered state will not.
var ErrDurability = errors.New("dyn: durability wait failed")

// SetWALHook installs (or, with nil, removes) the durability hook.
func (g *Graph) SetWALHook(h WALHook) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.walHook = h
}

// New wraps a static base graph. The base must be undirected and is frozen
// into the dynamic graph (callers must not mutate it afterwards); weights
// are not carried over.
func New(base *graph.Graph) (*Graph, error) { return NewWithEpoch(base, 0) }

// NewWithEpoch wraps a static base graph like New but starts the epoch
// counter at epoch instead of zero. Recovery uses it to resume from a
// checkpoint snapshot: the loaded CSR becomes the base and subsequent WAL
// records continue the epoch sequence where the snapshot left off.
func NewWithEpoch(base *graph.Graph, epoch uint64) (*Graph, error) {
	if base == nil {
		return nil, fmt.Errorf("dyn: nil base graph")
	}
	if base.Directed {
		return nil, fmt.Errorf("dyn: base graph must be undirected")
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("dyn: invalid base: %w", err)
	}
	// A patched-layout base (e.g. an incrementally frozen snapshot fed
	// back in) is packed flat first: the snapshot base must be a plain
	// CSR whose Offsets are the vertex bounds.
	base = base.Flat()
	g := &Graph{}
	snap := &Snapshot{
		epoch: epoch,
		n:     base.N,
		base:  sortedBase(&graph.Graph{N: base.N, Offsets: base.Offsets, Adj: base.Adj}),
		adds:  make([][]int32, base.N),
		dels:  make([][]int32, base.N),
		arcs:  base.NumEdges(),
	}
	g.mat = newMatState(snap)
	snap.mat = g.mat
	g.histApply = obs.NewHistogram()
	g.cur.Store(snap)
	g.cum.Epoch = epoch
	g.uf = newUnionFind(base.N)
	for v := 0; v < base.N; v++ {
		for _, w := range base.Neighbors(v) {
			if int32(v) < w {
				g.uf.union(v, int(w))
			}
		}
	}
	return g, nil
}

// NewEmpty returns a dynamic graph of n isolated vertices.
func NewEmpty(n int) *Graph {
	if n < 0 {
		n = 0
	}
	g := &Graph{}
	base := &graph.Graph{N: n, Offsets: make([]int64, n+1)}
	snap := &Snapshot{
		n:    n,
		base: base,
		adds: make([][]int32, n),
		dels: make([][]int32, n),
	}
	g.mat = newMatState(snap)
	snap.mat = g.mat
	g.histApply = obs.NewHistogram()
	g.cur.Store(snap)
	g.uf = newUnionFind(n)
	return g
}

// sortedBase enforces the per-vertex sorted-adjacency invariant every
// snapshot base carries (HasEdge/Degree binary-search against it). Graphs
// that already satisfy it — every generator in internal/graph and every
// compacted base — are returned unchanged; otherwise the adjacency is
// copied and sorted segment by segment.
func sortedBase(base *graph.Graph) *graph.Graph {
	sorted := true
	for v := 0; v < base.N && sorted; v++ {
		sorted = slices.IsSorted(base.Neighbors(v))
	}
	if sorted {
		return base
	}
	adj := slices.Clone(base.Adj)
	out := &graph.Graph{N: base.N, Offsets: base.Offsets, Adj: adj}
	for v := 0; v < out.N; v++ {
		slices.Sort(out.Neighbors(v))
	}
	return out
}

// Snapshot returns the current immutable view.
func (g *Graph) Snapshot() *Snapshot { return g.cur.Load() }

// Freeze materializes the current snapshot as a static CSR graph.
func (g *Graph) Freeze() *graph.Graph { return g.Snapshot().Freeze() }

// N returns the current vertex count.
func (g *Graph) N() int { return g.Snapshot().n }

// NumArcs returns the current arc count.
func (g *Graph) NumArcs() int64 { return g.Snapshot().arcs }

// Epoch returns the current epoch.
func (g *Graph) Epoch() uint64 { return g.Snapshot().epoch }

// Stats returns a copy of the lifetime counters.
func (g *Graph) Stats() CumStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cum
}

// BatchResult reports one Apply call.
type BatchResult struct {
	// Applied counts net state changes: inserted edges, deleted edges and
	// added vertices.
	Applied int
	// Rejected counts mutations that failed their May-Fail check: adding
	// an edge that already existed, or removing one that did not (as
	// observed in the pre-batch snapshot).
	Rejected int
	// Redundant counts mutations that committed but duplicated another
	// committed mutation of the same batch (e.g. the same edge added
	// twice); exactly one of the duplicates is applied.
	Redundant int
	// VerticesAdded counts KindAddVertex mutations (always applied).
	VerticesAdded int
	// Epoch is the epoch the batch produced.
	Epoch uint64
	// Compacted reports whether this batch triggered a delta compaction
	// back into a fresh base CSR.
	Compacted bool
	// Elapsed is the machine time of the transactional phase: virtual
	// time on the sim backend, wall time on native.
	Elapsed time.Duration
	// Stats carries the machine counters of the transactional phase.
	Stats stats.Total
}

// clone produces a mutable copy of s for the next epoch with capacity for
// newN vertices. Per-vertex slices stay shared until copyVertex detaches
// them.
func (s *Snapshot) clone(newN int) *Snapshot {
	ns := &Snapshot{
		epoch:   s.epoch + 1,
		n:       newN,
		base:    s.base,
		adds:    make([][]int32, newN),
		dels:    make([][]int32, newN),
		arcs:    s.arcs,
		addArcs: s.addArcs,
		delArcs: s.delArcs,
		mat:     s.mat,
	}
	copy(ns.adds, s.adds)
	copy(ns.dels, s.dels)
	return ns
}

// cow tracks which per-vertex delta slices have already been detached from
// the previous snapshot's backing arrays during one batch, so repeated
// mutations of the same vertex append in place instead of re-copying.
type cow struct {
	adds, dels map[int32]bool
}

func newCow() *cow { return &cow{adds: make(map[int32]bool), dels: make(map[int32]bool)} }

// insertArc adds the arc u→v to the delta structures of ns (copy-on-write
// with respect to the previous snapshot's backing arrays).
func (ns *Snapshot) insertArc(u, v int32, c *cow) {
	if !c.adds[u] {
		ns.adds[u] = detach(ns.adds[u])
		c.adds[u] = true
	}
	ns.adds[u] = append(ns.adds[u], v)
	ns.arcs++
	ns.addArcs++
}

// deleteArc removes every copy of the arc u→v from ns and returns how many
// arcs disappeared.
func (ns *Snapshot) deleteArc(u, v int32, c *cow) int64 {
	var removed int64
	if n := countArc(ns.adds[u], v); n > 0 {
		kept := make([]int32, 0, len(ns.adds[u])-int(n))
		for _, w := range ns.adds[u] {
			if w != v {
				kept = append(kept, w)
			}
		}
		ns.adds[u] = kept // fresh backing array, now private to the batch
		c.adds[u] = true
		ns.addArcs -= n
		removed += n
	}
	if int(u) < ns.base.N && !containsArc(ns.dels[u], v) {
		if n := sortedCountArc(ns.base.Neighbors(int(u)), v); n > 0 {
			if !c.dels[u] {
				ns.dels[u] = detach(ns.dels[u])
				c.dels[u] = true
			}
			ns.dels[u] = append(ns.dels[u], v)
			ns.delArcs += n
			removed += n
		}
	}
	ns.arcs -= removed
	return removed
}

// detach returns a copy of list so appends never touch backing arrays
// shared with published snapshots.
func detach(list []int32) []int32 {
	out := make([]int32, len(list), len(list)+1)
	copy(out, list)
	return out
}
